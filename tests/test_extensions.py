"""The arbitrary-topology extension (paper §5 open problem)."""

import pytest

from repro.core.errors import AdversaryViolation, ConfigurationError
from repro.extensions import (
    ConnectivityPreservingAdversary,
    DynamicGraphEngine,
    RandomWalkExplorer,
    RotorRouterExplorer,
    StaticGraphAdversary,
    TerminatingRotorRouter,
    hypercube,
    path_graph,
    ring_graph,
    torus,
)
from repro.extensions.explorers import attach_node_oracle

TOPOLOGIES = {
    "ring12": ring_graph(12),
    "torus3x4": torus(3, 4),
    "cube3": hypercube(3),
}


def run_walker(graph, explorer, *, adversary=None, agents=1, horizon=60_000,
               rotor=False):
    engine = DynamicGraphEngine(
        graph, explorer, list(range(agents)),
        adversary=adversary or StaticGraphAdversary(),
    )
    if rotor:
        attach_node_oracle(engine)
    return engine.run(horizon)


class TestTopologies:
    def test_ring_matches_cycle(self):
        graph = ring_graph(8)
        assert graph.number_of_nodes() == 8
        assert all(d == 2 for _, d in graph.degree())

    def test_torus_is_4_regular(self):
        graph = torus(3, 5)
        assert graph.number_of_nodes() == 15
        assert all(d == 4 for _, d in graph.degree())

    def test_hypercube_degrees(self):
        graph = hypercube(4)
        assert graph.number_of_nodes() == 16
        assert all(d == 4 for _, d in graph.degree())


class TestEngineBasics:
    def test_requires_agents_and_connectivity(self):
        import networkx as nx

        with pytest.raises(ConfigurationError):
            DynamicGraphEngine(ring_graph(5), RandomWalkExplorer(), [])
        disconnected = nx.Graph([(0, 1), (2, 3)])
        with pytest.raises(ConfigurationError):
            DynamicGraphEngine(disconnected, RandomWalkExplorer(), [0])

    def test_start_node_must_exist(self):
        with pytest.raises(ConfigurationError):
            DynamicGraphEngine(ring_graph(5), RandomWalkExplorer(), [99])

    def test_adversary_cannot_disconnect(self):
        class Disconnector:
            def reset(self, engine):
                return None

            def missing_edges(self, engine):
                # remove both edges of node 0: disconnects a ring
                return {frozenset((0, 1)), frozenset((0, 4))}

        engine = DynamicGraphEngine(
            ring_graph(5), RandomWalkExplorer(seed=1), [2],
            adversary=Disconnector(),
        )
        with pytest.raises(AdversaryViolation):
            engine.step()

    def test_connectivity_preserving_adversary_is_legal(self):
        engine = DynamicGraphEngine(
            torus(3, 4), RandomWalkExplorer(seed=2), [0],
            adversary=ConnectivityPreservingAdversary(budget=3, seed=5),
        )
        for _ in range(50):
            engine.step()  # the engine itself validates connectivity

    def test_blocked_agent_waits_on_port(self):
        class RemoveAll:
            """Keep the agent's port-0 edge missing while switched on."""

            def __init__(self):
                self.on = True

            def reset(self, engine):
                return None

            def missing_edges(self, engine):
                if not self.on:
                    return set()
                agent = engine.agents[0]
                return {engine._edge_of_port(agent.node, 0)}

        class PushPortZero:
            name = "push0"

            def setup(self, memory):
                return None

            def choose_port(self, snapshot, memory):
                return 0

        adversary = RemoveAll()
        engine = DynamicGraphEngine(
            ring_graph(6), PushPortZero(), [3], adversary=adversary
        )
        engine.step()
        assert engine.agents[0].port == 0
        assert engine.agents[0].node == 3
        adversary.on = False
        engine.step()
        assert engine.agents[0].node != 3

    def test_port_mutual_exclusion(self):
        class PushPortZero:
            name = "push0"

            def setup(self, memory):
                return None

            def choose_port(self, snapshot, memory):
                return 0

        class HoldEverything:
            def reset(self, engine):
                return None

            def missing_edges(self, engine):
                return {frozenset((0, 1))}  # port 0 of node 0 is edge (0,1)

        engine = DynamicGraphEngine(
            ring_graph(6), PushPortZero(), [0, 0], adversary=HoldEverything()
        )
        engine.step()
        holders = [a for a in engine.agents if a.port == 0]
        assert len(holders) == 1  # the other agent was denied


class TestExploration:
    @pytest.mark.parametrize("label", sorted(TOPOLOGIES))
    def test_random_walk_explores_static(self, label):
        result = run_walker(TOPOLOGIES[label], RandomWalkExplorer(seed=7))
        assert result.explored

    @pytest.mark.parametrize("label", sorted(TOPOLOGIES))
    def test_rotor_router_explores_static(self, label):
        result = run_walker(TOPOLOGIES[label], RotorRouterExplorer(), rotor=True)
        assert result.explored

    @pytest.mark.parametrize("label", sorted(TOPOLOGIES))
    def test_random_walk_explores_dynamic(self, label):
        result = run_walker(
            TOPOLOGIES[label], RandomWalkExplorer(seed=11),
            adversary=ConnectivityPreservingAdversary(budget=1, seed=13),
        )
        assert result.explored

    @pytest.mark.parametrize("label", sorted(TOPOLOGIES))
    def test_rotor_router_explores_dynamic(self, label):
        result = run_walker(
            TOPOLOGIES[label], RotorRouterExplorer(), rotor=True,
            adversary=ConnectivityPreservingAdversary(budget=1, seed=17),
        )
        assert result.explored

    def test_multiple_agents_explore_faster_on_average(self):
        graph = torus(4, 4)
        solo = run_walker(graph, RandomWalkExplorer(seed=3))
        team = run_walker(graph, RandomWalkExplorer(seed=3), agents=4)
        assert team.explored
        assert team.exploration_round <= solo.exploration_round

    def test_rotor_router_requires_the_oracle(self):
        engine = DynamicGraphEngine(ring_graph(6), RotorRouterExplorer(), [0])
        with pytest.raises(ConfigurationError):
            engine.step()


class TestUnifiedCoreMachinery:
    """Ring machinery on graph topologies (the engine unification)."""

    def test_ssync_round_robin_activates_one_agent_per_round(self):
        from repro.schedulers import RoundRobinScheduler

        engine = DynamicGraphEngine(
            torus(3, 4), RandomWalkExplorer(seed=2), [0, 5, 9],
            scheduler=RoundRobinScheduler(),
        )
        seen = []
        for _ in range(6):
            engine.step()
            assert len(engine.last_active) == 1
            seen.append(next(iter(engine.last_active)))
        assert set(seen) == {0, 1, 2}  # fair rotation over the team

    def test_ssync_random_walk_still_explores(self):
        from repro.schedulers import RandomFairScheduler

        engine = DynamicGraphEngine(
            torus(3, 3), RandomWalkExplorer(seed=4), [0, 4],
            scheduler=RandomFairScheduler(seed=9),
            adversary=ConnectivityPreservingAdversary(budget=1, seed=5),
        )
        result = engine.run(60_000)
        assert result.explored

    def test_pt_transport_carries_sleeping_agents(self):
        """A sleeping agent on a port of a present edge crosses under PT."""
        from repro.core.sim import TransportModel
        from repro.schedulers.ssync import ScriptedScheduler

        class PushPortZero:
            name = "push0"

            def setup(self, memory):
                return None

            def choose_port(self, snapshot, memory):
                return 0

        class BlockOnce:
            """Missing on the agent's first attempt, present afterwards."""

            def __init__(self):
                self.round = 0

            def reset(self, engine):
                self.round = 0

            def missing_edges(self, engine):
                self.round += 1
                if self.round == 1:
                    return {engine._edge_of_port(engine.agents[0].node, 0)}
                return set()

        engine = DynamicGraphEngine(
            torus(3, 3), PushPortZero(), [0, 4],
            adversary=BlockOnce(),
            scheduler=ScriptedScheduler([{0}, {1}]),
            transport=TransportModel.PT,
        )
        engine.step()  # agent 0 acquires port 0, edge missing: blocked
        assert engine.agents[0].port == 0
        engine.step()  # agent 0 sleeps; PT carries it across the present edge
        assert engine.agents[0].port is None
        assert engine.agents[0].node != 0
        assert engine.agents[0].memory.Tsteps == 1

    def test_terminating_rotor_reaches_explicit_termination(self):
        graph = hypercube(3)
        explorer = TerminatingRotorRouter(size=graph.number_of_nodes())
        engine = DynamicGraphEngine(graph, explorer, [0, 3])
        attach_node_oracle(engine)
        result = engine.run(10_000, stop_on_exploration=False)
        assert result.explored
        assert result.all_terminated
        assert result.termination_mode().value == "explicit"
        assert result.explored_before_terminations()

    def test_peeking_block_agent_pins_its_target(self):
        from repro.adversary import BlockAgentAdversary
        from repro.extensions import ConnectivitySafeAdversary

        engine = DynamicGraphEngine(
            torus(3, 3), RotorRouterExplorer(), [0, 4],
            adversary=ConnectivitySafeAdversary(BlockAgentAdversary(0)),
        )
        attach_node_oracle(engine)
        for _ in range(200):
            engine.step()
        assert engine.agents[0].node == 0
        assert engine.agents[0].memory.Tsteps == 0
        assert engine.agents[1].memory.Tsteps > 0

    def test_connectivity_safe_wrapper_declines_bridges(self):
        from repro.adversary import BlockAgentAdversary
        from repro.extensions import ConnectivitySafeAdversary

        # every path edge is a bridge: the wrapper must always decline,
        # so the walk proceeds as if the adversary were static
        engine = DynamicGraphEngine(
            path_graph(6), RandomWalkExplorer(seed=3), [2],
            adversary=ConnectivitySafeAdversary(BlockAgentAdversary(0)),
        )
        result = engine.run(20_000)
        assert result.explored

    def test_trace_records_graph_rounds(self):
        from repro.core.trace import EventKind, Trace

        trace = Trace(limit=None)
        engine = DynamicGraphEngine(
            ring_graph(6), RandomWalkExplorer(seed=1), [0, 3], trace=trace)
        engine.run(50)
        kinds = {e.kind for e in trace.events}
        assert EventKind.ROUND in kinds
        assert EventKind.MOVE in kinds
        assert trace.of_kind(EventKind.EXPLORED)

    def test_landmark_is_visible_in_graph_snapshots(self):
        class Idle:
            name = "idle"

            def setup(self, memory):
                return None

            def choose_port(self, snapshot, memory):
                return None

        engine = DynamicGraphEngine(torus(3, 3), Idle(), [4], landmark=4)
        snap = engine.snapshot_for(engine.agents[0])
        assert snap.is_landmark
        assert engine._snapshot_for_scan(engine.agents[0]).is_landmark

    def test_run_returns_the_unified_result_type(self):
        from repro.core.results import RunResult

        engine = DynamicGraphEngine(ring_graph(5), RandomWalkExplorer(seed=8), [0])
        result = engine.run(10_000)
        assert isinstance(result, RunResult)
        assert result.ring_size == 5  # node count, for any topology
        assert result.total_moves == sum(
            a.memory.Tsteps for a in engine.agents)
