"""Fault plans as campaign dimensions: grammar, engine semantics, replay.

The contract under test: ``CellConfig.faults`` parses into a
:class:`FaultPlan`, the engine crashes exactly the named agents at the
named times, termination re-anchors on the surviving census, faulty
cells replay deterministically, and the fault hook routes scalar
(batch-ineligible) without disturbing fault-free keys or records.
"""

import pytest

from repro.campaigns.executor import execute_cell
from repro.campaigns.registry import build_cell_engine, validate_cell
from repro.campaigns.spec import CellConfig
from repro.core import EventKind
from repro.core.batch import _batch_ineligibility, batch_eligible
from repro.core.errors import ConfigurationError
from repro.obs.metrics import PhaseTimer
from repro.resilience import FaultPlan


def cell(**overrides) -> CellConfig:
    base = dict(algorithm="known-bound", ring_size=8, agents=2, seed=0,
                adversary="random", transport="ns",
                placement="offset-spread", max_rounds=400)
    base.update(overrides)
    return CellConfig(**base)


class TestPlanGrammar:
    def test_crash_clause(self):
        plan = FaultPlan.parse("crash:1@4")
        assert plan.crash_at == ((4, 1),)
        assert not plan.lost and not plan.lost_all and plan.rate == 0.0

    def test_multiple_clauses(self):
        plan = FaultPlan.parse("crash:0@2, lost:1, rate:0.25")
        assert plan.crash_at == ((2, 0),)
        assert plan.lost == frozenset({1})
        assert plan.rate == 0.25

    def test_lost_star(self):
        plan = FaultPlan.parse("lost:*")
        assert plan.lost_all
        assert plan.injector().lost_on_removal(7)

    @pytest.mark.parametrize("bad", [
        "", "  ,  ", "crash:1", "crash:@4", "crash:1@4@5", "lost:x",
        "rate:1.5", "rate:0", "rate:1", "explode:3", "crash:1@2,crash:1@9",
        "rate:0.1,rate:0.2",
    ])
    def test_rejects_malformed(self, bad):
        with pytest.raises(ConfigurationError):
            FaultPlan.parse(bad)

    def test_plans_are_hashable_and_comparable(self):
        assert FaultPlan.parse("crash:1@4") == FaultPlan.parse(" crash:1@4 ")
        assert hash(FaultPlan.parse("lost:*")) == hash(FaultPlan.parse("lost:*"))

    def test_validate_agents_catches_out_of_range(self):
        FaultPlan.parse("crash:1@4").validate_agents(2)
        with pytest.raises(ConfigurationError, match=r"\[2\]"):
            FaultPlan.parse("crash:2@4").validate_agents(2)
        with pytest.raises(ConfigurationError):
            validate_cell(cell(faults="lost:5"))


class TestScheduledCrashes:
    def test_named_agent_crashes_at_named_round(self):
        engine = build_cell_engine(cell(faults="crash:1@4"))
        result = engine.run(400)
        victim = result.agents[1]
        assert victim.crashed and not victim.terminated
        assert result.crashed_count == 1
        assert [a.index for a in result.survivors] == [0]

    def test_crash_event_lands_in_trace(self):
        from repro.core import Trace

        trace = Trace()
        engine = build_cell_engine(cell(faults="crash:1@4"), trace=trace)
        engine.run(400)
        crashes = trace.of_kind(EventKind.CRASH)
        assert len(crashes) == 1 and crashes[0].agent == 1
        assert crashes[0].round == 4

    def test_termination_is_surviving_agent_census(self):
        result = build_cell_engine(cell(faults="crash:1@4")).run(400)
        # the survivor still terminates explicitly -> all-terminated
        assert result.all_terminated
        assert result.halted_reason == "all-terminated"
        assert result.terminated_count == 1

    def test_all_crashed_halts_with_its_own_reason(self):
        result = build_cell_engine(cell(faults="crash:0@2,crash:1@2")).run(400)
        assert result.crashed_count == 2
        assert not result.all_terminated
        assert result.halted_reason == "all-crashed"
        assert not result.survivors

    def test_crashed_agent_releases_its_port(self):
        engine = build_cell_engine(cell(faults="crash:0@3"))
        engine.run(400)
        # no occupancy entry may reference the crashed agent
        for _count, ports in engine._occ.values():
            assert 0 not in ports.values()

    def test_fault_free_cell_reports_no_census(self):
        result = build_cell_engine(cell()).run(400)
        assert result.crashed_count is None
        assert "crashed" not in result.summary()
        faulty = build_cell_engine(cell(faults="crash:1@4")).run(400)
        assert "crashed=1" in faulty.summary()


class TestLostOnRemoval:
    def test_lossy_agent_dies_waiting_on_removed_edge(self):
        # ns-starvation removes exactly the edge its victim wants every
        # round, so a removal-lossy team dies deterministically.
        config = cell(algorithm="unconscious", adversary="ns-starvation",
                      faults="lost:*", max_rounds=50)
        result = build_cell_engine(config).run(50)
        assert result.crashed_count == len(result.agents)
        assert result.halted_reason == "all-crashed"

    def test_fault_free_twin_survives_the_same_adversary(self):
        config = cell(algorithm="unconscious", adversary="ns-starvation",
                      max_rounds=50)
        result = build_cell_engine(config).run(50)
        assert result.crashed_count is None
        assert all(not a.crashed for a in result.agents)


class TestStochasticRate:
    def test_rate_replays_byte_for_byte(self):
        config = cell(algorithm="unconscious", faults="rate:0.2",
                      seed=5, stop_on_exploration=True)
        first = execute_cell(config)
        second = execute_cell(config)
        assert first["metrics"] == second["metrics"]
        assert first["key"] == second["key"]

    def test_rate_stream_never_aliases_the_adversary_stream(self):
        # same seed with and without a rate plan: the adversary's removal
        # schedule (and thus the survivors' trajectory up to the first
        # crash) must be identical — the fault RNG is a separate stream.
        fault_free = build_cell_engine(cell(seed=9)).run(400)
        faulty = build_cell_engine(cell(seed=9, faults="crash:1@4")).run(400)
        assert faulty.rounds <= fault_free.rounds or faulty.rounds > 0

    def test_different_seeds_draw_different_schedules(self):
        outcomes = {
            execute_cell(cell(algorithm="unconscious", faults="rate:0.3",
                              seed=seed, stop_on_exploration=True,
                              ring_size=12))["metrics"]["crashed_count"]
            for seed in range(8)
        }
        assert len(outcomes) > 1   # the rate clause actually bites


class TestInstrumentedParity:
    def test_instrumented_step_applies_identical_faults(self):
        config = cell(faults="crash:1@4,rate:0.1", seed=2)
        plain = build_cell_engine(config).run(400)
        timed_engine = build_cell_engine(config)
        timed_engine.set_instrument(PhaseTimer())
        timed = timed_engine.run(400)
        assert timed.crashed_count == plain.crashed_count
        assert timed.rounds == plain.rounds
        assert [(a.final_node, a.crashed, a.terminated) for a in timed.agents] == \
               [(a.final_node, a.crashed, a.terminated) for a in plain.agents]


class TestCampaignIntegration:
    def test_fault_cells_are_batch_ineligible(self):
        assert batch_eligible(cell())
        key, reason = _batch_ineligibility(cell(faults="crash:1@4"))
        assert key == "faults" and "crash:1@4" in reason

    def test_batch_auto_equals_batch_off_for_fault_cells(self):
        config = cell(faults="crash:1@4")
        auto = execute_cell(CellConfig.from_dict(dict(config.to_dict(), batch="auto")))
        off = execute_cell(CellConfig.from_dict(dict(config.to_dict(), batch="off")))
        assert auto["metrics"] == off["metrics"]
        assert auto["metrics"]["crashed_count"] == 1

    def test_key_unchanged_when_faults_absent(self):
        """Stores written before the fault dimension existed must resume."""
        config = cell()
        legacy = config.to_dict()
        legacy.pop("faults")             # a dict from a pre-faults store
        assert CellConfig.from_dict(legacy).key() == config.key()

    def test_faulty_key_differs_and_roundtrips(self):
        config = cell(faults="crash:1@4")
        assert config.key() != cell().key()
        rebuilt = CellConfig.from_dict(config.to_dict())
        assert rebuilt.faults == "crash:1@4"
        assert rebuilt.key() == config.key()

    def test_record_metrics_carry_the_census(self):
        record = execute_cell(cell(faults="crash:1@4"))
        assert record["metrics"]["crashed_count"] == 1
        clean = execute_cell(cell())
        assert "crashed_count" not in clean["metrics"]
