"""The unified retry/backoff helper every hardened transaction uses."""

import sqlite3

import pytest

from repro.campaigns.distributed import LeaseLost
from repro.resilience import ChaosCrash, retry
from repro.resilience.retry import (
    DEFAULT_ATTEMPTS,
    DEFAULT_BASE_S,
    DEFAULT_CAP_S,
    backoff_delay,
)


class Flaky:
    """Fails with ``exc`` for the first ``failures`` calls, then returns."""

    def __init__(self, failures, exc=sqlite3.OperationalError("locked")):
        self.failures = failures
        self.exc = exc
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.calls <= self.failures:
            raise self.exc
        return "ok"


class TestRetry:
    def test_transient_failure_is_retried_to_success(self):
        sleeps = []
        fn = Flaky(failures=2)
        assert retry(fn, site="t", sleep=sleeps.append) == "ok"
        assert fn.calls == 3
        assert len(sleeps) == 2

    def test_exhaustion_reraises_the_last_error(self):
        fn = Flaky(failures=99)
        with pytest.raises(sqlite3.OperationalError):
            retry(fn, site="t", attempts=4, sleep=lambda _s: None)
        assert fn.calls == 4

    def test_non_retryable_errors_propagate_immediately(self):
        for exc in (ValueError("boom"), LeaseLost("stolen"),
                    ChaosCrash("dead")):
            fn = Flaky(failures=99, exc=exc)
            with pytest.raises(type(exc)):
                retry(fn, site="t", sleep=lambda _s: None)
            assert fn.calls == 1

    def test_first_success_sleeps_nothing(self):
        sleeps = []
        assert retry(lambda: 42, site="t", sleep=sleeps.append) == 42
        assert sleeps == []

    def test_sleeps_follow_the_deterministic_schedule(self):
        sleeps = []
        fn = Flaky(failures=3)
        retry(fn, site="queue.claim", sleep=sleeps.append)
        assert sleeps == [backoff_delay("queue.claim", attempt)
                          for attempt in (1, 2, 3)]


class TestBackoffDelay:
    def test_pure_function_of_site_and_attempt(self):
        assert backoff_delay("a", 3) == backoff_delay("a", 3)
        assert backoff_delay("a", 3) != backoff_delay("b", 3)

    def test_exponential_up_to_the_cap(self):
        # strip the jitter factor: delay / (1 + 0.5*j) is the raw curve
        def raw(attempt):
            d = backoff_delay("site", attempt)
            assert d >= min(DEFAULT_CAP_S, DEFAULT_BASE_S * 2 ** (attempt - 1))
            return d

        assert raw(1) < raw(3) < raw(10)
        # far past the cap the delay is bounded by cap * max jitter
        assert backoff_delay("site", 50) <= DEFAULT_CAP_S * 1.5

    def test_default_budget_is_sane(self):
        total = sum(backoff_delay("store.write", a)
                    for a in range(1, DEFAULT_ATTEMPTS))
        assert 0.05 < total < 2.0   # rides out a convoy, fails fast


class TestChaosIntegration:
    def test_injected_busy_exercises_the_retry_path(self, monkeypatch):
        from repro.resilience.chaos import CHAOS_ENV, reset_chaos_policy

        monkeypatch.setenv(CHAOS_ENV, "seed=1,busy=0.5")
        reset_chaos_policy()
        try:
            calls = []
            # a function that always succeeds still fails transiently
            # when the armed policy injects at the choke point
            outcomes = [
                retry(lambda: calls.append(1) or "ok",
                      site="t", attempts=30, sleep=lambda _s: None)
                for _ in range(32)
            ]
            assert all(o == "ok" for o in outcomes)
            assert len(calls) == 32       # every call eventually succeeded
        finally:
            reset_chaos_policy()
