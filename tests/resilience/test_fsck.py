"""``campaign fsck``: torn JSONL recovery, SQLite referential integrity.

Also holds the regression tests for satellite guarantees: a JSONL store
torn mid-byte (inside a multi-byte UTF-8 sequence) must stay readable,
and quarantine must restore a byte-clean file without losing any whole
record.
"""

import json

import pytest

from repro.campaigns import CellConfig, JsonlStore, SqliteStore
from repro.campaigns.distributed import WorkQueue
from repro.core.errors import ConfigurationError
from repro.resilience import fsck_store


def rec(key, **extra):
    return {
        "key": key,
        "config": {"ring_size": 8, "seed": 0, "algorithm": "unconscious"},
        "metrics": {"rounds": 3, "explored": True, "total_moves": 5,
                    "exploration_round": 3, "all_terminated": True,
                    "last_termination_round": 3, "mode": "unconscious"},
        **extra,
    }


def cells(n=4):
    return [CellConfig(algorithm="unconscious", ring_size=8, seed=s,
                       max_rounds=100) for s in range(n)]


class TestJsonlFsck:
    def test_clean_store_is_clean(self, tmp_path):
        store = JsonlStore(tmp_path / "r.jsonl")
        store.append(rec("a"))
        report = fsck_store(store)
        assert report.clean and report.ok
        assert "clean" in report.summary()

    def test_torn_tail_detected_and_quarantined(self, tmp_path):
        store = JsonlStore(tmp_path / "r.jsonl")
        store.append(rec("a"))
        store.append(rec("b"))
        raw = store.path.read_bytes()
        store.path.write_bytes(raw[:-25])      # kill -9 mid final record
        report = fsck_store(store)
        assert not report.ok
        assert [f.check for f in report.findings] == ["torn-tail"]

        repaired = fsck_store(store, quarantine=True)
        assert repaired.ok and not repaired.clean
        assert all(f.repaired for f in repaired.findings)
        # the torn bytes moved to the sidecar; the store re-reads clean
        sidecar = store.path.with_name(store.path.name + ".quarantine")
        assert sidecar.exists()
        assert [r["key"] for r in store.records()] == ["a"]
        assert fsck_store(store).clean

    def test_mid_utf8_byte_truncation_stays_readable(self, tmp_path):
        """A line torn inside a multi-byte UTF-8 sequence must not take
        down the whole file (regression: text-mode readers raise
        ``UnicodeDecodeError`` for the entire iteration)."""
        store = JsonlStore(tmp_path / "r.jsonl")
        store.append(rec("a"))
        # a raw-UTF-8 record line (the JSON writer escapes non-ASCII, so
        # build the torn bytes by hand), cut one byte into "π"
        line = json.dumps(rec("ключ-β", note="π≠3"),
                          ensure_ascii=False).encode("utf-8")
        cut = line.rfind("π".encode("utf-8")) + 1
        with store.path.open("ab") as fh:
            fh.write(line[:cut])
        # the reader skips the torn tail, keeps every whole record
        assert [r["key"] for r in store.records()] == ["a"]
        report = fsck_store(store, quarantine=True)
        assert report.ok
        assert fsck_store(store).clean

    def test_interior_garbage_is_malformed_line(self, tmp_path):
        store = JsonlStore(tmp_path / "r.jsonl")
        store.append(rec("a"))
        with store.path.open("ab") as fh:
            fh.write(b"not json at all\n")
        store.append(rec("b"))
        report = fsck_store(store)
        assert [f.check for f in report.findings] == ["malformed-line"]
        fsck_store(store, quarantine=True)
        assert [r["key"] for r in store.records()] == ["a", "b"]

    def test_duplicate_successful_key_is_an_error(self, tmp_path):
        store = JsonlStore(tmp_path / "r.jsonl")
        store.append(rec("a"))
        store.append(rec("a"))
        report = fsck_store(store)
        assert [f.check for f in report.findings] == ["duplicate-key"]
        assert not report.ok

    def test_error_then_success_retry_is_legitimate(self, tmp_path):
        store = JsonlStore(tmp_path / "r.jsonl")
        error = rec("a")
        del error["metrics"]
        store.append(dict(error, error="worker exploded"))
        store.append(rec("a"))
        assert fsck_store(store).clean

    def test_missing_file_is_clean(self, tmp_path):
        assert fsck_store(JsonlStore(tmp_path / "never.jsonl")).clean

    def test_unknown_backend_rejected(self):
        class Exotic:
            scheme = "mongo"

            def uri(self):
                return "mongo:x"

        with pytest.raises(ConfigurationError, match="mongo"):
            fsck_store(Exotic())


class TestSqliteFsck:
    def make_queue(self, tmp_path, *, campaign="fsck-test"):
        store = SqliteStore(tmp_path / "q.db", campaign=campaign)
        return store, WorkQueue(store, lease_ttl_s=30.0)

    def test_clean_queue_is_clean(self, tmp_path):
        store, queue = self.make_queue(tmp_path)
        queue.enqueue(cells(), chunk_size=2)
        claim = queue.claim("w1")
        queue.complete(claim.chunk_id, "w1",
                       [rec(CellConfig.from_dict(c).key())
                        for c in claim.cells])
        assert fsck_store(store).clean

    def test_orphaned_lease_detected_and_repaired(self, tmp_path):
        store, queue = self.make_queue(tmp_path)
        queue.enqueue(cells(), chunk_size=2)
        claim = queue.claim("w1")
        conn = store.connection()
        with conn:   # a lease whose chunk went elsewhere (corruption)
            conn.execute("UPDATE chunks SET state = 'done' WHERE id = ?",
                         (claim.chunk_id,))
        report = fsck_store(store)
        assert [f.check for f in report.findings] == ["orphaned-lease"]
        repaired = fsck_store(store, quarantine=True)
        assert repaired.ok and all(f.repaired for f in repaired.findings)
        assert fsck_store(store).clean

    def test_leaseless_chunk_returned_to_pending(self, tmp_path):
        store, queue = self.make_queue(tmp_path)
        queue.enqueue(cells(), chunk_size=2)
        claim = queue.claim("w1")
        conn = store.connection()
        with conn:   # the lease row vanished (half-applied steal)
            conn.execute("DELETE FROM leases WHERE chunk_id = ?",
                         (claim.chunk_id,))
        report = fsck_store(store)
        assert [f.check for f in report.findings] == ["leaseless-chunk"]
        fsck_store(store, quarantine=True)
        assert fsck_store(store).clean
        # the chunk is claimable again
        assert queue.claim("w2") is not None

    def test_unparseable_result_row_quarantined(self, tmp_path):
        store = SqliteStore(tmp_path / "r.db", campaign="fsck-test")
        store.append(rec("a"))
        conn = store.connection()
        with conn:
            conn.execute("UPDATE results SET record = '{torn' "
                         "WHERE campaign_key = 'fsck-test'")
        report = fsck_store(store)
        assert [f.check for f in report.findings] == ["bad-record"]
        assert not report.ok
        fsck_store(store, quarantine=True)
        assert fsck_store(store).clean
        assert list(store.records()) == []     # the cell will re-run

    def test_chunk_integrity_mismatch_parked(self, tmp_path):
        store, queue = self.make_queue(tmp_path)
        queue.enqueue(cells(), chunk_size=2)
        conn = store.connection()
        with conn:
            conn.execute("UPDATE chunks SET n_cells = 99")
        report = fsck_store(store)
        assert {f.check for f in report.findings} == {"chunk-integrity"}
        fsck_store(store, quarantine=True)
        assert fsck_store(store).clean
