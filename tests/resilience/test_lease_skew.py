"""Lease safety under clock skew: fast/slow workers must stay honest.

The lease protocol tolerates wall clocks disagreeing by less than the
TTL (heartbeats land every TTL/4, stealing waits a full TTL of
silence).  These tests pin the two failure modes a skewed worker could
introduce — stealing a live peer's lease, and ghost-heartbeating a
lease already stolen from it — using the deterministic FakeClock
harness shared with the distributed suite.
"""

import time

from repro.campaigns import SqliteStore
from repro.campaigns.distributed import LeaseLost, WorkQueue
from repro.resilience import reset_chaos_policy
from repro.resilience.chaos import CHAOS_ENV

from ..campaigns.test_distributed import FakeClock, fast_spec

TTL = 20.0


def two_clock_queues(tmp_path, spec, skew_s):
    """One store, two queue views: an honest clock and a skewed one."""
    honest = FakeClock(now=1000.0)
    skewed = FakeClock(now=1000.0 + skew_s)
    store = SqliteStore(tmp_path / "q.db", campaign=spec.name)
    peer_store = SqliteStore(tmp_path / "q.db", campaign=spec.name)
    return (WorkQueue(store, lease_ttl_s=TTL, clock=honest), honest,
            WorkQueue(peer_store, lease_ttl_s=TTL, clock=skewed), skewed)


class TestSkewedPeers:
    def test_fast_peer_must_not_steal_a_live_lease(self, tmp_path):
        """A peer running > TTL/4 fast sees fresh heartbeats as older
        than they are — but never old enough to steal before TTL."""
        spec = fast_spec(name="skew-fast", seeds=(0,), sizes=(6,))
        queue, clock, fast_queue, fast_clock = two_clock_queues(
            tmp_path, spec, skew_s=TTL / 2)
        queue.enqueue(spec.cell_list(), chunk_size=100)   # one chunk
        claim = queue.claim("steady")
        assert claim is not None
        # the steady worker heartbeats on schedule (every TTL/4) while
        # the fast peer keeps probing: it must come away empty-handed
        for _ in range(8):
            clock.advance(TTL / 4)
            fast_clock.advance(TTL / 4)
            assert queue.heartbeat(claim.chunk_id, "steady")
            assert fast_queue.claim("fast-peer") is None
        # the lease is still the steady worker's to complete
        assert queue.heartbeat(claim.chunk_id, "steady")

    def test_fast_peer_steals_once_the_holder_goes_silent(self, tmp_path):
        """Skew shortens the fast peer's patience but stealing still
        requires a full (skewed) TTL of silence — and then works."""
        spec = fast_spec(name="skew-steal", seeds=(0,), sizes=(6,))
        queue, clock, fast_queue, fast_clock = two_clock_queues(
            tmp_path, spec, skew_s=TTL / 2)
        queue.enqueue(spec.cell_list(), chunk_size=100)
        claim = queue.claim("steady")
        # silence: from the fast peer's view the heartbeat ages out
        # TTL/2 early; advance just past its (skewed) expiry
        fast_clock.advance(TTL / 2 + 0.1)
        stolen = fast_queue.claim("fast-peer")
        assert stolen is not None
        assert stolen.stolen_from == "steady"
        assert stolen.chunk_id == claim.chunk_id

    def test_slow_holder_cannot_ghost_heartbeat_a_stolen_lease(self, tmp_path):
        """After a steal the original holder's heartbeats and completion
        must fail no matter how far behind its clock is."""
        spec = fast_spec(name="skew-ghost", seeds=(0,), sizes=(6,))
        queue, clock, slow_queue, slow_clock = two_clock_queues(
            tmp_path, spec, skew_s=-(TTL / 2))
        queue.enqueue(spec.cell_list(), chunk_size=100)
        claim = slow_queue.claim("slow")
        # the slow worker stalls; honest time passes a full TTL
        clock.advance(TTL + 0.1)
        stolen = queue.claim("thief")
        assert stolen is not None and stolen.stolen_from == "slow"
        # the slow worker wakes up behind the times: its heartbeat must
        # report the lease lost, not refresh the thief's lease
        assert not slow_queue.heartbeat(claim.chunk_id, "slow")
        try:
            slow_queue.complete(claim.chunk_id, "slow", [])
            raise AssertionError("completion of a stolen lease must raise")
        except LeaseLost:
            pass
        # and nothing the slow worker did revived its lease
        assert not slow_queue.heartbeat(claim.chunk_id, "slow")

    def test_holder_never_steals_its_own_fresh_lease(self, tmp_path):
        """A worker whose clock jumps forward mid-claim must not see its
        own lease as orphaned while it is still heartbeating."""
        spec = fast_spec(name="skew-self", seeds=(0,), sizes=(6,))
        clock = FakeClock(now=1000.0)
        store = SqliteStore(tmp_path / "q.db", campaign=spec.name)
        queue = WorkQueue(store, lease_ttl_s=TTL, clock=clock)
        queue.enqueue(spec.cell_list(), chunk_size=100)
        claim = queue.claim("jumpy")
        clock.advance(TTL / 2)             # a forward jump > TTL/4
        assert queue.heartbeat(claim.chunk_id, "jumpy")
        assert queue.claim("jumpy") is None   # no self-steal


class TestChaosSkewWiring:
    def test_chaos_skew_wraps_only_the_wall_clock(self, tmp_path, monkeypatch):
        """REPRO_CHAOS skew applies to the real clock, never to an
        injected test clock (which would double-skew FakeClock suites
        and the LeaseKeeper, both of which pass clocks through)."""
        monkeypatch.setenv(CHAOS_ENV, "skew=500")
        reset_chaos_policy()
        try:
            spec = fast_spec(name="skew-chaos", seeds=(0,), sizes=(6,))
            fake = FakeClock(now=1000.0)
            injected = WorkQueue(
                SqliteStore(tmp_path / "a.db", campaign=spec.name),
                lease_ttl_s=TTL, clock=fake)
            assert injected._clock is fake          # untouched
            walled = WorkQueue(
                SqliteStore(tmp_path / "b.db", campaign=spec.name),
                lease_ttl_s=TTL)
            assert walled._clock() - time.time() > 400   # skewed
        finally:
            reset_chaos_policy()
