"""The chaos harness: spec grammar, seeded determinism, injection points."""

import sqlite3

import pytest

from repro.core.errors import ConfigurationError
from repro.resilience import (
    ChaosCrash,
    ChaosPolicy,
    chaos_policy,
    reset_chaos_policy,
)
from repro.resilience.chaos import CHAOS_ENV


@pytest.fixture(autouse=True)
def fresh_policy_cache(monkeypatch):
    """Each test re-reads the env; leave no armed policy behind."""
    monkeypatch.delenv(CHAOS_ENV, raising=False)
    reset_chaos_policy()
    yield
    reset_chaos_policy()


class TestGrammar:
    def test_full_spec(self):
        policy = ChaosPolicy.parse(
            "seed=7, busy=0.2, crash=after-commit:2, skew=5, delay=0.01")
        assert policy.seed == 7
        assert policy.busy == 0.2
        assert policy.crash_at == "after-commit"
        assert policy.crash_nth == 2
        assert policy.skew_s == 5.0
        assert policy.delay_s == 0.01

    def test_empty_spec_is_a_neutral_policy(self):
        policy = ChaosPolicy.parse("")
        assert policy.busy == 0.0 and policy.crash_at is None

    @pytest.mark.parametrize("bad", [
        "busy", "busy=x", "busy=1.0", "busy=-0.1", "crash=mid-commit:2",
        "crash=before-commit", "delay=-1", "volume=11",
    ])
    def test_rejects_malformed(self, bad):
        with pytest.raises(ConfigurationError):
            ChaosPolicy.parse(bad)


class TestDeterminism:
    def busy_schedule(self, seed, draws=64):
        policy = ChaosPolicy(seed=seed, busy=0.3)
        schedule = []
        for i in range(draws):
            try:
                policy.maybe_busy(f"site{i}")
                schedule.append(False)
            except sqlite3.OperationalError:
                schedule.append(True)
        return schedule

    def test_same_seed_same_injection_schedule(self):
        first = self.busy_schedule(seed=7)
        assert first == self.busy_schedule(seed=7)
        assert any(first) and not all(first)

    def test_different_seed_different_schedule(self):
        assert self.busy_schedule(seed=7) != self.busy_schedule(seed=8)

    def test_injected_error_names_the_site(self):
        policy = ChaosPolicy(seed=0, busy=0.999)
        with pytest.raises(sqlite3.OperationalError, match="chaos queue.claim"):
            for _ in range(100):
                policy.maybe_busy("queue.claim")


class TestCrashPoint:
    def test_dies_on_exactly_the_nth_visit(self):
        policy = ChaosPolicy(crash_point="before-commit", crash_nth=3)
        policy.crash_point("before-commit")
        policy.crash_point("before-commit")
        with pytest.raises(ChaosCrash, match="before-commit #3"):
            policy.crash_point("before-commit")
        # ...and only once: later visits pass (the process is dead anyway)
        policy.crash_point("before-commit")

    def test_other_points_never_trip_the_counter(self):
        policy = ChaosPolicy(crash_point="after-commit", crash_nth=1)
        policy.crash_point("before-commit")
        with pytest.raises(ChaosCrash):
            policy.crash_point("after-commit")

    def test_chaos_crash_is_not_an_ordinary_exception(self):
        assert not issubclass(ChaosCrash, Exception)
        assert issubclass(ChaosCrash, BaseException)


class TestClockAndDelay:
    def test_skewed_clock_adds_the_constant(self):
        policy = ChaosPolicy(skew_s=5.0)
        clock = policy.skewed(lambda: 100.0)
        assert clock() == 105.0

    def test_zero_skew_returns_the_clock_unwrapped(self):
        clock = lambda: 1.0  # noqa: E731
        assert ChaosPolicy().skewed(clock) is clock

    def test_delay_sleeps_only_when_configured(self, monkeypatch):
        import repro.resilience.chaos as chaos_mod

        slept = []
        monkeypatch.setattr(chaos_mod.time, "sleep", slept.append)
        ChaosPolicy().maybe_delay()
        assert slept == []
        ChaosPolicy(delay_s=0.25).maybe_delay()
        assert slept == [0.25]


class TestProcessPolicy:
    def test_unset_env_means_no_chaos(self):
        assert chaos_policy() is None

    def test_env_arms_one_cached_policy(self, monkeypatch):
        monkeypatch.setenv(CHAOS_ENV, "seed=3,busy=0.1")
        reset_chaos_policy()
        policy = chaos_policy()
        assert policy is not None and policy.seed == 3
        # cached: the same object (and thus the same RNG stream) is
        # handed to every caller in the process
        assert chaos_policy() is policy

    def test_reset_rereads_the_env(self, monkeypatch):
        monkeypatch.setenv(CHAOS_ENV, "seed=3")
        reset_chaos_policy()
        assert chaos_policy() is not None
        monkeypatch.delenv(CHAOS_ENV)
        reset_chaos_policy()
        assert chaos_policy() is None
