"""The CLI entry point and the ASCII renderer."""

import pytest

from repro.adversary import FixedMissingEdge
from repro.algorithms.fsync import KnownUpperBound
from repro.analysis.render import render_configuration, render_header, watch
from repro.api import build_engine
from repro.cli import ALGORITHMS, main, make_parser


class TestRenderer:
    def engine(self):
        return build_engine(
            KnownUpperBound(bound=6), ring_size=6, positions=[0, 3],
            landmark=2, adversary=FixedMissingEdge(4),
        )

    def test_configuration_shows_agents_and_landmark(self):
        line = render_configuration(self.engine())
        assert line.count("[1]") == 2  # two singly-occupied nodes
        assert "[.*]" in line  # empty landmark node

    def test_missing_edge_marker(self):
        engine = self.engine()
        engine.step()
        line = render_configuration(engine)
        assert " / " in line

    def test_port_markers_appear_when_blocked(self):
        engine = build_engine(
            KnownUpperBound(bound=6), ring_size=6, positions=[5],
            adversary=FixedMissingEdge(4),  # blocks the leftward move from v5
        )
        engine.step()
        line = render_configuration(engine)
        assert "<" in line

    def test_header_names_every_node(self):
        header = render_header(self.engine())
        for node in range(6):
            assert f"v{node}" in header

    def test_watch_prints_rounds_and_outcome(self):
        lines = []
        watch(self.engine(), 5, printer=lines.append)
        assert len(lines) == 8  # header + initial + 5 rounds + summary
        assert "explored=" in lines[-1]

    def test_watch_stops_when_all_terminated(self):
        engine = self.engine()
        lines = []
        watch(engine, 100, printer=lines.append)
        assert engine.all_terminated
        assert "terminated=[0, 1]" in lines[-1]


class TestCli:
    def test_atlas(self, capsys):
        assert main(["atlas"]) == 0
        out = capsys.readouterr().out
        assert "Theorem 3" in out

    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "known-bound" in out
        assert "prevent-meetings" in out

    def test_run_known_bound(self, capsys):
        code = main(["run", "known-bound", "-n", "8", "--adversary", "random"])
        out = capsys.readouterr().out
        assert code == 0
        assert "mode=explicit" in out

    def test_run_unconscious(self, capsys):
        code = main(["run", "unconscious", "-n", "6", "--adversary", "none"])
        out = capsys.readouterr().out
        assert code == 0
        assert "mode=unconscious" in out

    def test_run_pt_bound_three_agents(self, capsys):
        code = main(["run", "pt-bound-3", "-n", "9", "--no-chirality",
                     "--seed", "4"])
        out = capsys.readouterr().out
        assert code == 0
        assert "explored" in out

    def test_run_blocked_agent_fails_exploration(self, capsys):
        code = main(["run", "unconscious", "-n", "8",
                     "--adversary", "block-agent", "--agents", "1",
                     "--rounds", "200"])
        assert code == 1  # exploration impossible: non-zero exit

    def test_watch_command(self, capsys):
        code = main(["watch", "known-bound", "-n", "6",
                     "--adversary", "none", "--rounds", "20"])
        out = capsys.readouterr().out
        assert code == 0
        assert "v0" in out and "r=" in out

    def test_every_algorithm_runs(self, capsys):
        for name in sorted(ALGORITHMS):
            argv = ["run", name, "-n", "6", "--seed", "1"]
            if "no-chirality" in name or name in ("pt-bound-3", "pt-landmark-3",
                                                  "et-exact"):
                argv.append("--no-chirality")
            code = main(argv)
            out = capsys.readouterr().out
            assert code == 0, (name, out)

    def test_parser_rejects_unknown_algorithm(self):
        with pytest.raises(SystemExit):
            make_parser().parse_args(["run", "no-such-algorithm"])
