"""Shared builders for algorithm/engine tests."""

from __future__ import annotations

from typing import Sequence

from repro.adversary import NoRemoval, RandomMissingEdge
from repro.api import build_engine
from repro.core import Engine, Orientation, TransportModel
from repro.core.interfaces import ActivationScheduler, Algorithm, EdgeAdversary
from repro.schedulers import ETFairScheduler, FsyncScheduler, RandomFairScheduler


def fsync_engine(
    algorithm: Algorithm,
    n: int,
    positions: Sequence[int],
    *,
    landmark: int | None = None,
    adversary: EdgeAdversary | None = None,
    orientations: Sequence[Orientation] | None = None,
    chirality: bool = True,
    flipped: tuple[int, ...] = (),
    trace=None,
) -> Engine:
    return build_engine(
        algorithm,
        ring_size=n,
        positions=positions,
        landmark=landmark,
        adversary=adversary or NoRemoval(),
        orientations=orientations,
        chirality=chirality,
        flipped=flipped,
        scheduler=FsyncScheduler(),
        trace=trace,
    )


def pt_engine(
    algorithm: Algorithm,
    n: int,
    positions: Sequence[int],
    *,
    seed: int = 0,
    landmark: int | None = None,
    adversary: EdgeAdversary | None = None,
    scheduler: ActivationScheduler | None = None,
    chirality: bool = True,
    flipped: tuple[int, ...] = (),
) -> Engine:
    return build_engine(
        algorithm,
        ring_size=n,
        positions=positions,
        landmark=landmark,
        adversary=adversary or RandomMissingEdge(seed=seed),
        scheduler=scheduler or RandomFairScheduler(seed=seed + 1000),
        chirality=chirality,
        flipped=flipped,
        transport=TransportModel.PT,
    )


def et_engine(
    algorithm: Algorithm,
    n: int,
    positions: Sequence[int],
    *,
    seed: int = 0,
    landmark: int | None = None,
    adversary: EdgeAdversary | None = None,
    chirality: bool = True,
    flipped: tuple[int, ...] = (),
) -> Engine:
    return build_engine(
        algorithm,
        ring_size=n,
        positions=positions,
        landmark=landmark,
        adversary=adversary or RandomMissingEdge(seed=seed),
        scheduler=ETFairScheduler(RandomFairScheduler(seed=seed + 2000)),
        chirality=chirality,
        flipped=flipped,
        transport=TransportModel.ET,
    )
