"""The high-level facade: build_engine / run_exploration."""

import pytest

from repro import Trace, TransportModel, build_engine, run_exploration
from repro.adversary import RandomMissingEdge
from repro.algorithms.fsync import KnownUpperBound, LandmarkWithChirality
from repro.algorithms.ssync import PTBoundWithChirality
from repro.core import CANONICAL, MIRRORED
from repro.core.errors import ConfigurationError
from repro.schedulers import RandomFairScheduler


class TestBuildEngine:
    def test_defaults_are_benign_fsync(self):
        engine = build_engine(
            KnownUpperBound(bound=8), ring_size=8, positions=[0, 4]
        )
        engine.step()
        assert engine.missing_edge is None
        assert engine.last_active == {0, 1}

    def test_chirality_flag_builds_orientations(self):
        engine = build_engine(
            KnownUpperBound(bound=8), ring_size=8, positions=[0, 4],
            chirality=False, flipped=(1,),
        )
        assert engine.agents[0].orientation == CANONICAL
        assert engine.agents[1].orientation == MIRRORED

    def test_explicit_orientations_override(self):
        engine = build_engine(
            KnownUpperBound(bound=8), ring_size=8, positions=[0, 4],
            orientations=[MIRRORED, MIRRORED],
        )
        assert all(a.orientation == MIRRORED for a in engine.agents)

    def test_landmark_is_passed_through(self):
        engine = build_engine(
            LandmarkWithChirality(), ring_size=8, positions=[1, 4], landmark=3
        )
        assert engine.ring.landmark == 3

    def test_invalid_ring_size(self):
        with pytest.raises(ConfigurationError):
            build_engine(KnownUpperBound(bound=8), ring_size=2, positions=[0])


class TestRunExploration:
    def test_basic_run(self):
        result = run_exploration(
            KnownUpperBound(bound=8), ring_size=8, positions=[0, 4],
            max_rounds=100,
        )
        assert result.explored
        assert result.all_terminated

    def test_trace_capture(self):
        trace = Trace()
        run_exploration(
            KnownUpperBound(bound=6), ring_size=6, positions=[0, 3],
            max_rounds=50, trace=trace,
        )
        assert len(trace) > 0

    def test_ssync_run(self):
        result = run_exploration(
            PTBoundWithChirality(bound=8), ring_size=8, positions=[0, 4],
            max_rounds=30_000,
            adversary=RandomMissingEdge(seed=1),
            scheduler=RandomFairScheduler(seed=2),
            transport=TransportModel.PT,
        )
        assert result.explored

    def test_stop_on_exploration(self):
        result = run_exploration(
            KnownUpperBound(bound=8), ring_size=8, positions=[0, 4],
            max_rounds=100, stop_on_exploration=True,
        )
        assert result.halted_reason == "explored"

    def test_stop_when(self):
        result = run_exploration(
            KnownUpperBound(bound=8), ring_size=8, positions=[0, 4],
            max_rounds=100, stop_when=lambda e: e.round_no >= 2,
        )
        assert result.rounds == 2
