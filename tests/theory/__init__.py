"""theory test package."""
