"""The paper's bounds and the Tables 1-4 feasibility map."""

import pytest

from repro.theory import (
    Knowledge,
    Model,
    ResultKind,
    TABLE_ROWS,
    Termination,
    fsync_known_bound_time,
    fsync_lower_bound_two_agents,
    lookup,
    no_chirality_timeout,
    partial_termination_lower_bound,
    pt_bound_moves_lower,
    pt_landmark_moves_lower,
)
from repro.theory.tables import render_map


class TestBounds:
    def test_theorem3_time(self):
        assert fsync_known_bound_time(10) == 24

    def test_observation3(self):
        assert fsync_lower_bound_two_agents(10) == 17

    def test_theorem4(self):
        assert partial_termination_lower_bound(10) == 9

    def test_upper_exceeds_lower(self):
        for n in range(3, 50):
            assert fsync_known_bound_time(n) >= fsync_lower_bound_two_agents(n)
            assert fsync_known_bound_time(n) >= partial_termination_lower_bound(n)

    def test_no_chirality_timeout_value(self):
        assert no_chirality_timeout(8) == 32 * ((3 * 3 + 3) * 5 * 8)

    def test_pt_lower_bounds_are_quadratic(self):
        assert pt_bound_moves_lower(20, 20) == 10 * 10
        assert pt_landmark_moves_lower(10) == 50
        assert pt_landmark_moves_lower(20) / pt_landmark_moves_lower(10) == 4.0


class TestFeasibilityMap:
    def test_sixteen_rows(self):
        assert len(TABLE_ROWS) == 16

    def test_tables_partition(self):
        assert len(lookup(table=1)) == 2
        assert len(lookup(table=2)) == 4   # 3 table rows + Theorem 5
        assert len(lookup(table=3)) == 4
        assert len(lookup(table=4)) == 6

    def test_impossibilities_have_no_algorithm(self):
        for row in lookup(kind=ResultKind.IMPOSSIBLE):
            assert row.algorithm is None

    def test_possibilities_name_an_implemented_algorithm(self):
        import repro.algorithms as algorithms

        for row in lookup(kind=ResultKind.POSSIBLE):
            assert row.algorithm is not None
            assert hasattr(algorithms, row.algorithm), row.algorithm

    def test_every_row_cites_a_theorem(self):
        for row in TABLE_ROWS:
            assert row.theorem.startswith("Theorem")

    def test_ns_model_has_only_the_impossibility(self):
        rows = lookup(model=Model.SSYNC_NS)
        assert len(rows) == 1
        assert rows[0].kind is ResultKind.IMPOSSIBLE
        assert rows[0].termination is Termination.EXPLORATION

    def test_pt_possibilities_match_paper(self):
        rows = lookup(table=4, model=Model.SSYNC_PT, kind=ResultKind.POSSIBLE)
        agents = sorted(row.agents for row in rows)
        assert agents == ["2", "2", "3", "3"]
        # chirality buys the two-agent solutions (Theorem 10's boundary)
        for row in rows:
            if row.agents == "2":
                assert Knowledge.CHIRALITY in row.assumptions
            else:
                assert Knowledge.CHIRALITY not in row.assumptions

    def test_et_exact_size_requirement(self):
        rows = lookup(model=Model.SSYNC_ET, kind=ResultKind.POSSIBLE)
        partial = [r for r in rows if r.termination is Termination.PARTIAL]
        assert len(partial) == 1
        assert Knowledge.EXACT_SIZE in partial[0].assumptions

    def test_lookup_by_algorithm(self):
        rows = lookup(algorithm="KnownUpperBound")
        assert len(rows) == 1
        assert rows[0].complexity == "3N - 6 rounds"

    def test_describe_and_render(self):
        text = render_map()
        assert "Theorem 3" in text
        assert "impossible" in text
        for row in TABLE_ROWS:
            assert row.theorem.split()[1] in text
