"""The Query layer and complexity-shape fits, from records to verdicts."""

import math

import pytest

from repro.campaigns import JsonlStore, SqliteStore, fit_rows, render_fit_rows
from repro.campaigns.stores import Query
from repro.core.errors import ConfigurationError


def rec(key, n, seed=0, label="row", rounds=None, moves=None, **extra):
    rounds = rounds if rounds is not None else 3 * n
    return {
        "key": key,
        "config": {"ring_size": n, "seed": seed, "label": label,
                   "algorithm": "x"},
        "metrics": {"rounds": rounds, "explored": True,
                    "total_moves": moves if moves is not None else rounds,
                    "exploration_round": rounds, "all_terminated": True,
                    "last_termination_round": rounds, "mode": "explicit"},
        **extra,
    }


@pytest.fixture(params=["jsonl", "sqlite"])
def store(request, tmp_path):
    """Every test below runs against both backends."""
    if request.param == "jsonl":
        return JsonlStore(tmp_path / "r.jsonl")
    return SqliteStore(tmp_path / "r.db")


class TestQuery:
    def test_where_narrows_and_composes(self, store):
        store.append_many([rec(f"k{n}{s}", n, seed=s)
                           for n in (8, 16) for s in (0, 1)])
        q = store.query()
        assert q.count() == 4
        assert q.where(ring_size=8).count() == 2
        assert q.where(ring_size=8).where(seed=1).count() == 1
        assert q.where(ring_size=8, seed=1).count() == 1
        # the original query is untouched (immutability)
        assert q.count() == 4

    def test_where_rejects_unknown_dimensions(self, store):
        with pytest.raises(ConfigurationError, match="unknown filter"):
            store.query().where(bogus=1)

    def test_values_lists_distinct_sorted(self, store):
        store.append_many([rec(f"k{n}", n) for n in (32, 8, 16)])
        assert store.query().values("ring_size") == [8, 16, 32]

    def test_table_routes_through_aggregate(self, store):
        store.append_many([rec(f"k{n}{s}", n, seed=s)
                           for n in (8, 16) for s in (0, 1)])
        rows = store.query().table(by=("ring_size",))
        assert [dict(r.group)["ring_size"] for r in rows] == [8, 16]
        assert all(r.stats.runs == 2 for r in rows)

    def test_series_reduces_per_x(self, store):
        store.append_many(
            [rec("a8", 8, seed=0, rounds=10), rec("b8", 8, seed=1, rounds=20),
             rec("a16", 16, seed=0, rounds=40)])
        assert store.query().series() == [(8, 15.0), (16, 40.0)]
        assert store.query().series(reduce="max") == [(8, 20.0), (16, 40.0)]
        assert store.query().series(reduce="median") == [(8, 15.0), (16, 40.0)]
        assert store.query().series(reduce="p90") == [(8, 19.0), (16, 40.0)]
        with pytest.raises(ConfigurationError, match="unknown reducer"):
            store.query().series(reduce="harmonic")

    def test_series_skips_errors(self, store):
        store.append(rec("ok", 8, rounds=10))
        store.append({"key": "bad", "config": {"ring_size": 8}, "error": "x"})
        assert store.query().series() == [(8, 10.0)]

    def test_fit_needs_three_points(self, store):
        store.append_many([rec(f"k{n}", n) for n in (8, 16)])
        assert store.query().fit() is None

    def test_fit_recovers_linear_shape(self, store):
        store.append_many([rec(f"k{n}", n, rounds=3 * n - 6)
                           for n in (8, 16, 32, 64)])
        profile = store.query().fit()
        assert profile is not None
        assert profile.best.model == "linear"
        assert profile.r_squared("linear") > 0.9999

    def test_fit_recovers_quadratic_shape(self, store):
        store.append_many([rec(f"k{n}", n, rounds=n * n + 7)
                           for n in (8, 16, 32, 64)])
        assert store.query().fit().best.model == "quadratic"

    def test_fit_recovers_nlogn_shape(self, store):
        store.append_many(
            [rec(f"k{n}", n, rounds=int(5 * n * math.log2(n)))
             for n in (8, 16, 32, 64, 128)])
        assert store.query().fit().best.model == "nlogn"


class TestFitRows:
    def test_one_row_per_group_and_metric(self, store):
        store.append_many(
            [rec(f"a{n}", n, label="lin", rounds=2 * n, moves=2 * n)
             for n in (8, 16, 32)]
            + [rec(f"b{n}", n, label="quad", rounds=n * n, moves=n * n)
               for n in (8, 16, 32)])
        rows = fit_rows(store.query())
        assert [(dict(r.group)["label"], r.metric) for r in rows] == [
            ("lin", "rounds"), ("lin", "total_moves"),
            ("quad", "rounds"), ("quad", "total_moves")]
        verdicts = {dict(r.group)["label"]: r.profile.best.model
                    for r in rows if r.metric == "rounds"}
        assert verdicts == {"lin": "linear", "quad": "quadratic"}

    def test_underpopulated_group_renders_gracefully(self, store):
        store.append_many([rec(f"k{n}", n) for n in (8, 16)])
        rows = fit_rows(store.query())
        assert all(r.profile is None for r in rows)
        text = render_fit_rows(rows, title="fits")
        assert "needs >= 3 sweep points" in text

    def test_render_empty(self):
        assert "no completed cells" in render_fit_rows([])

    def test_backends_produce_identical_fit_text(self, tmp_path):
        records = [rec(f"k{n}{s}", n, seed=s, rounds=3 * n - 6)
                   for n in (8, 16, 32) for s in (0, 1)]
        jsonl = JsonlStore(tmp_path / "r.jsonl")
        sqlite = SqliteStore(tmp_path / "r.db")
        jsonl.append_many(records)
        sqlite.append_many(records)
        assert (render_fit_rows(fit_rows(jsonl.query()))
                == render_fit_rows(fit_rows(sqlite.query())))


class TestQueryOnQueryObject:
    def test_query_is_reusable_between_operations(self, store):
        store.append_many([rec(f"k{n}", n) for n in (8, 16, 32)])
        q = Query(store).where(algorithm="x")
        assert q.count() == 3
        assert len(q.table(by=("ring_size",))) == 3
        assert len(q.series()) == 3


class TestPercentiles:
    """The p50/p90 reach of the query layer and the report rows."""

    def test_percentile_function_interpolates(self):
        from repro.campaigns.stores.query import percentile

        values = [10, 20, 30, 40, 50]
        assert percentile(values, 50) == 30
        assert percentile(values, 90) == 46.0
        assert percentile(values, 0) == 10
        assert percentile(values, 100) == 50
        assert percentile([7], 90) == 7.0
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile(values, 101)

    def test_series_percentile_reducers(self, store):
        store.append_many(
            [rec(f"k{s}", 8, seed=s, rounds=r)
             for s, r in enumerate((10, 20, 30, 40, 100))])
        assert store.query().series(reduce="p50") == [(8, 30.0)]
        assert store.query().series(reduce="p90") == [(8, 76.0)]
        assert store.query().series(reduce="p99") == [(8, 97.6)]

    def test_group_stats_carry_tails(self, store):
        from repro.campaigns.aggregate import summarize_metrics

        store.append_many(
            [rec(f"k{s}", 8, seed=s, rounds=r, moves=2 * r)
             for s, r in enumerate((10, 20, 30, 40, 100))])
        (row,) = store.query().table(by=("ring_size",))
        assert row.stats.p50_rounds == 30
        assert row.stats.p90_rounds == 76.0
        assert row.stats.p50_moves == 60
        assert row.stats.p90_moves == 152.0
        # mean hides the straggler; p90 shows it in the rendered row
        assert "p90 76" in str(row)
        stats = summarize_metrics(
            [{"rounds": r, "total_moves": r, "explored": True, "mode": "x"}
             for r in (1, 1, 1, 1, 1000)])
        assert stats.p50_rounds == 1
        assert stats.p90_rounds > 500


class TestScatter:
    """Per-seed scatter: the unreduced drill-down under the report."""

    def test_scatter_lists_every_record_sorted(self, store):
        store.append_many(
            [rec(f"k{n}-{s}", n, seed=s, rounds=10 * n + s)
             for n in (8, 6) for s in (1, 0)])
        points = store.query().scatter()
        assert points == [(6, 0, 60), (6, 1, 61), (8, 0, 80), (8, 1, 81)]

    def test_scatter_orders_two_digit_seeds_numerically(self, store):
        store.append_many(
            [rec(f"k{s}", 8, seed=s, rounds=100 + s) for s in (2, 11, 0, 10)])
        assert [p[1] for p in store.query().scatter()] == [0, 2, 10, 11]

    def test_scatter_skips_errors_and_respects_where(self, store):
        store.append_many([
            rec("a", 8, seed=0, rounds=80),
            rec("b", 8, seed=1, label="other", rounds=99),
            {"key": "c", "config": {"ring_size": 8, "seed": 2},
             "error": "boom"},
        ])
        assert store.query().where(label="row").scatter() == [(8, 0, 80)]

    def test_render_scatter_groups_like_the_table(self, store):
        from repro.campaigns.stores import render_scatter

        store.append_many(
            [rec(f"k{s}", 8, seed=s, rounds=50 + s) for s in (0, 1)])
        text = render_scatter(list(store.query().records()),
                              title="per-seed scatter")
        assert "== per-seed scatter" in text
        assert "seed=0" in text and "seed=1" in text
        assert "rounds=51" in text
        assert "label=row" in text

    def test_render_scatter_empty(self):
        from repro.campaigns.stores import render_scatter

        assert "(no completed cells)" in render_scatter([])
