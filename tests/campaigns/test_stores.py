"""Pluggable store backends: URIs, SQLite, round-trips, concurrency, export."""

import csv
import json
import multiprocessing
import sqlite3

import pytest

from repro.campaigns import (
    CampaignSpec,
    CellConfig,
    JsonlStore,
    SqliteStore,
    export_store,
    open_store,
    run_cells,
)
from repro.campaigns.stores import ResultStore, export_columns
from repro.core.errors import ConfigurationError


def rec(key, n=8, seed=0, rounds=3, **extra):
    return {
        "key": key,
        "config": {"ring_size": n, "seed": seed, "algorithm": "unconscious",
                   "label": "t", "flipped": [], "bound": None},
        "metrics": {"rounds": rounds, "explored": True, "total_moves": rounds,
                    "exploration_round": rounds, "all_terminated": False,
                    "last_termination_round": None, "mode": "unconscious"},
        **extra,
    }


def small_spec(seeds=(0, 1, 2)) -> CampaignSpec:
    return CampaignSpec(
        name="stores-test",
        base={"algorithm": "unconscious", "horizon": "100 * n",
              "stop_on_exploration": True, "placement": "offset-spread"},
        grid={"ring_size": [6, 8], "seed": list(seeds)},
    )


class TestOpenStore:
    def test_scheme_selects_backend(self, tmp_path):
        assert isinstance(open_store(f"jsonl:{tmp_path}/r.jsonl"), JsonlStore)
        assert isinstance(open_store(f"sqlite:{tmp_path}/r.db"), SqliteStore)

    def test_bare_path_sniffs_suffix(self, tmp_path):
        assert isinstance(open_store(tmp_path / "r.jsonl"), JsonlStore)
        assert isinstance(open_store(tmp_path / "r.db"), SqliteStore)
        assert isinstance(open_store(tmp_path / "r.sqlite3"), SqliteStore)
        assert isinstance(open_store(tmp_path / "no-suffix"), JsonlStore)

    def test_instance_passes_through(self, tmp_path):
        store = SqliteStore(tmp_path / "r.db")
        assert open_store(store) is store

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown store scheme"):
            open_store("mongo:results/r")

    def test_empty_path_rejected(self):
        with pytest.raises(ConfigurationError, match="missing a path"):
            open_store("sqlite:")

    def test_uri_round_trips(self, tmp_path):
        store = open_store(f"sqlite:{tmp_path}/r.db")
        assert open_store(store.uri()).path == store.path


class TestSqliteStore:
    def test_append_and_read_back(self, tmp_path):
        store = SqliteStore(tmp_path / "r.db")
        store.append(rec("a"))
        store.append(rec("b"))
        assert [r["key"] for r in store.records()] == ["a", "b"]
        assert store.completed_keys() == {"a", "b"}
        assert len(store) == 2 and "a" in store

    def test_error_records_are_not_completed(self, tmp_path):
        store = SqliteStore(tmp_path / "r.db")
        store.append(rec("ok"))
        store.append({"key": "bad", "config": {}, "error": "boom"})
        assert store.completed_keys() == {"ok"}
        assert "bad" not in store
        assert len(store) == 2  # the failure is still on record

    def test_missing_file_is_empty_and_not_created_by_reads(self, tmp_path):
        store = SqliteStore(tmp_path / "absent.db")
        assert list(store.records()) == []
        assert store.completed_keys() == set()
        assert len(store) == 0
        assert not store.path.exists()  # reads never create the database

    def test_creates_parent_directories(self, tmp_path):
        store = SqliteStore(tmp_path / "deep" / "er" / "r.db")
        store.append(rec("a"))
        assert store.path.exists()

    def test_completed_cache_tracks_appends(self, tmp_path):
        store = SqliteStore(tmp_path / "r.db")
        assert store.completed_keys() == set()
        store.append(rec("a"))
        assert store.completed_keys() == {"a"}
        store.append_many([rec("b"), {"key": "err", "config": {}, "error": "x"}])
        assert store.completed_keys() == {"a", "b"}

    def test_campaign_scoping(self, tmp_path):
        path = tmp_path / "shared.db"
        SqliteStore(path, campaign="alpha").append(rec("a"))
        SqliteStore(path, campaign="beta").append(rec("b"))
        assert SqliteStore(path, campaign="alpha").completed_keys() == {"a"}
        assert SqliteStore(path, campaign="beta").completed_keys() == {"b"}
        # no campaign tag -> the whole database
        assert SqliteStore(path).completed_keys() == {"a", "b"}

    def test_completed_keys_is_one_indexed_query(self, tmp_path):
        store = SqliteStore(tmp_path / "r.db")
        store.append_many([rec("a"), rec("b")])
        plan = store._connect().execute(
            "EXPLAIN QUERY PLAN "
            "SELECT DISTINCT cell_key FROM results WHERE ok = 1"
        ).fetchall()
        assert any("ix_results_cell_key" in row[-1] for row in plan)

    def test_select_pushdown_matches_python_filter(self, tmp_path):
        store = SqliteStore(tmp_path / "r.db")
        store.append_many(
            [rec(f"k{n}-{s}", n=n, seed=s) for n in (6, 8) for s in (0, 1)]
        )
        sql_keys = [r["key"] for r in store.select({"ring_size": 8})]
        py_keys = [r["key"] for r in store.records()
                   if r["config"]["ring_size"] == 8]
        assert sql_keys == py_keys == ["k8-0", "k8-1"]
        # membership, None, bool and residual (callable) filters
        assert [r["key"] for r in store.select({"seed": [1]})] == ["k6-1", "k8-1"]
        assert len(list(store.select({"bound": None}))) == 4
        assert [r["key"] for r in
                store.select({"ring_size": lambda v: v > 6})] == ["k8-0", "k8-1"]

    def test_malformed_sql_dimension_rejected(self, tmp_path):
        store = SqliteStore(tmp_path / "r.db")
        store.append(rec("a"))
        with pytest.raises(ConfigurationError, match="bad filter dimension"):
            list(store.select({"ring_size'); DROP TABLE results; --": 1}))


def _append_worker(args):
    path, worker_id, count = args
    store = SqliteStore(path)
    for i in range(count):
        store.append(rec(f"w{worker_id}-{i}"))
    store.close()
    return worker_id


def _report_quarantine(queue):
    from repro.campaigns.stores import sqlite as sqlite_mod

    stores = list(sqlite_mod._LIVE_STORES)
    queue.put((len(sqlite_mod._QUARANTINED_CONNECTIONS),
               all(s._conn is None for s in stores)))


class TestConcurrency:
    def test_concurrent_appends_from_processes(self, tmp_path):
        """Several processes hammer one database; nothing is lost."""
        path = tmp_path / "concurrent.db"
        SqliteStore(path).append(rec("seed-record"))  # create the schema
        workers, per_worker = 4, 25
        with multiprocessing.Pool(processes=workers) as pool:
            done = pool.map(
                _append_worker,
                [(str(path), w, per_worker) for w in range(workers)],
            )
        assert sorted(done) == list(range(workers))
        store = SqliteStore(path)
        assert len(store) == workers * per_worker + 1
        expected = {f"w{w}-{i}" for w in range(workers) for i in range(per_worker)}
        assert expected <= store.completed_keys()

    def test_fork_children_quarantine_inherited_connections(self, tmp_path):
        """A child must never finalize (close) a connection it inherited:
        SQLite's close path can drop POSIX locks / reset the WAL under a
        sibling's healthy connection, losing committed records.  The
        after-fork hook pins inherited connections instead."""
        parent = SqliteStore(tmp_path / "q.db")
        parent.append(rec("parent"))          # parent now holds a connection
        ctx = multiprocessing.get_context("fork")
        queue = ctx.SimpleQueue()
        proc = ctx.Process(target=_report_quarantine, args=(queue,))
        proc.start()
        quarantined, conn_is_none = queue.get()
        proc.join(timeout=30)
        assert quarantined >= 1                # the inherited conn is pinned
        assert conn_is_none                    # ...and detached from the store
        parent.append(rec("parent-2"))         # the parent conn is untouched
        assert SqliteStore(tmp_path / "q.db").completed_keys() == {
            "parent", "parent-2"}

    def test_connection_not_shared_across_fork(self, tmp_path):
        """A store instance created pre-fork reopens in the child."""
        path = tmp_path / "fork.db"
        parent = SqliteStore(path)
        parent.append(rec("parent"))
        ctx = multiprocessing.get_context()
        with ctx.Pool(processes=1) as pool:
            pool.map(_append_worker, [(str(path), 9, 1)])
        parent.append(rec("parent-2"))  # parent connection still healthy
        assert SqliteStore(path).completed_keys() == {
            "parent", "parent-2", "w9-0"}


class TestBackendEquivalence:
    def test_same_campaign_same_records(self, tmp_path):
        """Byte-identical records and aggregates out of both backends."""
        jsonl = JsonlStore(tmp_path / "r.jsonl")
        sqlite = SqliteStore(tmp_path / "r.db")
        cells = small_spec().cell_list()
        run_cells(cells, jsonl, workers=1)
        run_cells(cells, sqlite, workers=1)
        def comparable(store):
            # identical up to wall-clock timing, which is not data
            return {r["key"]: {k: v for k, v in r.items() if k != "elapsed_s"}
                    for r in store.records()}

        assert comparable(jsonl) == comparable(sqlite)
        assert ([str(r) for r in jsonl.query().table()]
                == [str(r) for r in sqlite.query().table()])

    def test_jsonl_to_sqlite_round_trip(self, tmp_path):
        jsonl = JsonlStore(tmp_path / "r.jsonl")
        run_cells(small_spec().cell_list(), jsonl, workers=1)
        sqlite = SqliteStore(tmp_path / "copy.db")
        sqlite.append_many(list(jsonl.records()))
        back = JsonlStore(tmp_path / "back.jsonl")
        back.append_many(list(sqlite.records()))
        assert list(back.records()) == list(jsonl.records())

    def test_resume_after_kill(self, tmp_path):
        """Partial sqlite store + torn write artifact: resume recomputes
        only what is missing, exactly like the JSONL backend."""
        path = tmp_path / "r.db"
        cells = small_spec().cell_list()
        run_cells(cells[:3], SqliteStore(path), workers=1)
        # a kill mid-transaction leaves no partial rows (transactions are
        # atomic); simulate the failed-cell case instead
        SqliteStore(path).append(
            {"key": cells[3].key(), "config": cells[3].to_dict(),
             "error": "KilledMidRun"})
        resumed = run_cells(cells, SqliteStore(path), workers=1,
                            retry_failed=True)
        assert resumed.skipped == 3          # completed cells stay done
        assert resumed.executed == 3         # the failed one is re-driven
        assert SqliteStore(path).completed_keys() == {c.key() for c in cells}
        # without the flag the error record counts as attempted
        plain = run_cells(cells, SqliteStore(path), workers=1)
        assert plain.executed == 0 and plain.skipped == len(cells)

    def test_run_cells_accepts_any_backend(self, tmp_path):
        run = run_cells(small_spec(seeds=(0,)).cells(),
                        open_store(f"sqlite:{tmp_path}/r.db"), workers=1)
        assert run.executed == 2 and run.failed == 0


class TestExport:
    def _seeded_store(self, tmp_path) -> ResultStore:
        store = SqliteStore(tmp_path / "r.db")
        run_cells(small_spec(seeds=(0,)).cells(), store, workers=1)
        store.append({"key": "bad", "config": {"ring_size": 6}, "error": "boom"})
        return store

    def test_csv_schema_and_rows(self, tmp_path):
        store = self._seeded_store(tmp_path)
        result = export_store(store, tmp_path / "out.csv")
        assert result.format == "csv" and result.rows == 3
        with result.path.open() as fh:
            rows = list(csv.DictReader(fh))
        assert len(rows) == 3
        header = list(rows[0])
        assert header == list(result.columns)
        assert header[:3] == ["key", "elapsed_s", "error"]
        assert "config_ring_size" in header and "metric_rounds" in header
        # config columns appear in CellConfig declaration order
        assert header.index("config_algorithm") < header.index("config_ring_size")
        # list-valued config fields are JSON-encoded
        assert json.loads(rows[0]["config_flipped"]) == []
        # error records keep their row, with metrics empty
        error_row = next(r for r in rows if r["key"] == "bad")
        assert error_row["error"] == "boom" and error_row["metric_rounds"] == ""

    def test_export_columns_is_the_declared_schema(self, tmp_path):
        store = self._seeded_store(tmp_path)
        records = list(store.records())
        result = export_store(store, tmp_path / "out.csv")
        assert list(result.columns) == export_columns(records)

    def test_where_filter_applies(self, tmp_path):
        store = self._seeded_store(tmp_path)
        result = export_store(store, tmp_path / "six.csv",
                              where={"ring_size": 8})
        assert result.rows == 1

    def test_parquet_without_pyarrow_fails_loudly(self, tmp_path):
        from repro.campaigns.stores import parquet_available

        store = self._seeded_store(tmp_path)
        if parquet_available():
            result = export_store(store, tmp_path / "out.parquet")
            assert result.format == "parquet" and result.rows == 3
        else:
            with pytest.raises(ConfigurationError, match="pyarrow"):
                export_store(store, tmp_path / "out.parquet")

    def test_unknown_format_rejected(self, tmp_path):
        store = self._seeded_store(tmp_path)
        with pytest.raises(ConfigurationError, match="unknown export format"):
            export_store(store, tmp_path / "out.xyz", format="xyz")


class TestDurability:
    def test_sqlite_is_wal_mode(self, tmp_path):
        store = SqliteStore(tmp_path / "r.db")
        store.append(rec("a"))
        (mode,) = store._connect().execute("PRAGMA journal_mode").fetchone()
        assert mode == "wal"

    def test_raw_rows_carry_indexed_columns(self, tmp_path):
        store = SqliteStore(tmp_path / "r.db", campaign="camp")
        store.append(rec("good"))
        store.append({"key": "bad", "config": {}, "error": "x"})
        with sqlite3.connect(store.path) as conn:
            rows = conn.execute(
                "SELECT cell_key, campaign_key, ok FROM results ORDER BY id"
            ).fetchall()
        assert rows == [("good", "camp", 1), ("bad", "camp", 0)]


class TestSchemaEvolution:
    def test_default_topology_keeps_pre_split_keys(self):
        """Cells with defaulted new fields hash exactly as the original
        schema did, so stores written before the split keep resuming."""
        import hashlib

        cell = CellConfig(algorithm="unconscious", ring_size=8, max_rounds=100,
                          seed=3, placement="offset-spread",
                          stop_on_exploration=True)
        legacy_fields = {  # the PR-1 field set, defaults filled in
            "algorithm": "unconscious", "ring_size": 8, "max_rounds": 100,
            "agents": 2, "seed": 3, "adversary": "random",
            "scheduler": "auto", "transport": "ns", "landmark": None,
            "chirality": True, "flipped": [], "placement": "offset-spread",
            "positions": None, "bound": None, "edge": 0,
            "stop_on_exploration": True,
        }
        legacy_key = hashlib.sha256(
            json.dumps(legacy_fields, sort_keys=True,
                       separators=(",", ":")).encode()
        ).hexdigest()[:24]
        assert cell.key() == legacy_key

    def test_non_default_new_fields_change_the_key(self):
        base = CellConfig(algorithm="random-walk", ring_size=9, max_rounds=100)
        assert (CellConfig(algorithm="random-walk", ring_size=9,
                           max_rounds=100, topology="path").key()
                != base.key())
        assert (CellConfig(algorithm="random-walk", ring_size=9,
                           max_rounds=100, adversary_arg=4).key()
                != base.key())


class TestWrongBackendFile:
    def test_sqlite_refuses_a_jsonl_file(self, tmp_path):
        path = tmp_path / "masquerade.db"
        JsonlStore(path).append(rec("a"))  # a JSONL file under a .db name
        store = SqliteStore(path)
        with pytest.raises(ConfigurationError, match="not a SQLite database"):
            list(store.records())
        with pytest.raises(ConfigurationError, match="jsonl:"):
            store.append(rec("b"))
        # and the original file is untouched
        assert JsonlStore(path).completed_keys() == {"a"}


class TestCampaignAdoption:
    def test_open_store_adopts_campaign_onto_untagged_instance(self, tmp_path):
        """Results written through an API-constructed store must be
        visible to the CLI's campaign-scoped reads (and vice versa)."""
        from repro.campaigns import run_campaign, get_spec

        path = tmp_path / "x.db"
        run = run_campaign(get_spec("smoke"), SqliteStore(path), workers=1)
        assert run.executed == 24
        scoped = SqliteStore(path, campaign="smoke")
        assert len(scoped.completed_keys()) == 24
        # and the same instance now resumes instead of re-running
        rerun = run_campaign(get_spec("smoke"), SqliteStore(path), workers=1)
        assert rerun.skipped == 24 and rerun.executed == 0

    def test_explicitly_tagged_instance_wins(self, tmp_path):
        store = SqliteStore(tmp_path / "x.db", campaign="mine")
        assert open_store(store, campaign="other").campaign == "mine"
