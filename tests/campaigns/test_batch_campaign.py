"""Batch routing through the campaign layer: chunks, stores, fleets.

The contract under test: routing eligible cells through
:class:`~repro.core.batch.BatchCore` is *invisible* in every persisted
artifact — store keys, record shapes, reports and resume behaviour are
byte-identical to the scalar path — while the queue's telemetry (and
only the telemetry) says which chunks vectorized and how fast.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.campaigns import (
    CampaignSpec,
    CellConfig,
    JsonlStore,
    SqliteStore,
    render_rows,
    run_cells,
)
from repro.campaigns.distributed import (
    WorkQueue,
    enqueue_campaign,
    fleet_status,
    render_status,
    run_worker,
)
from repro.campaigns.executor import (
    CampaignRun,
    default_chunk_size,
    run_chunk,
)
from repro.core import batch as batch_mod
from repro.core.batch import BATCH_WIDTH
from repro.core.errors import ConfigurationError

FIXTURES = Path(__file__).parent / "fixtures"

needs_numpy = pytest.mark.skipif(
    not batch_mod.numpy_available(), reason="batch path needs numpy")


def eligible_spec(name="batch-test", seeds=(0, 1, 2), sizes=(6, 8)) -> CampaignSpec:
    """Every cell of this spec qualifies for the batch path."""
    return CampaignSpec(
        name=name,
        base={"algorithm": "unconscious", "horizon": "100 * n",
              "stop_on_exploration": True, "placement": "offset-spread"},
        grid={"ring_size": list(sizes), "seed": list(seeds)},
    )


def scalar_only_cell(seed=0) -> CellConfig:
    """Zigzag peeks at agent state, so this cell is always routed scalar
    (PT transport itself vectorizes since the frontier widened)."""
    return CellConfig(algorithm="pt-bound", ring_size=8, agents=2,
                      max_rounds=400, transport="pt", adversary="zigzag",
                      adversary_arg=3, seed=seed)


def metrics_by_key(records):
    return {r["key"]: r["metrics"] for r in records if "error" not in r}


def report_text(store, name):
    return render_rows(store.query().table(), title=f"campaign {name}")


@needs_numpy
class TestRunChunkRouting:
    def test_mixed_chunk_splits_and_keeps_input_order(self):
        eligible = eligible_spec().cell_list()
        mixed = [eligible[0], scalar_only_cell(0), eligible[1],
                 scalar_only_cell(1), eligible[2]]
        records, batched = run_chunk(mixed)
        assert batched == 3
        assert [r["key"] for r in records] == [c.key() for c in mixed]
        assert all("metrics" in r for r in records)

    def test_off_routes_nothing_through_batch(self):
        records, batched = run_chunk(eligible_spec().cell_list(), batch="off")
        assert batched == 0 and len(records) == 6

    def test_record_shape_identical_across_routing(self):
        cells = eligible_spec().cell_list()
        auto, n_auto = run_chunk(cells, batch="auto")
        off, n_off = run_chunk(cells, batch="off")
        assert n_auto == len(cells) and n_off == 0
        for a, o in zip(auto, off):
            assert a["key"] == o["key"]
            assert a["config"] == o["config"]
            assert a["metrics"] == o["metrics"]
            assert set(a) == set(o)  # same fields, incl. elapsed_s

    def test_abort_stops_scalar_remainder(self):
        calls = []

        def abort():
            calls.append(None)
            return len(calls) > 1  # allow one scalar cell, then abort

        cells = [scalar_only_cell(s) for s in range(4)]
        records, batched = run_chunk(cells, batch="off", abort=abort)
        assert batched == 0
        assert len(records) == 1

    def test_cell_level_batch_field_routes_like_the_flag(self):
        from dataclasses import replace

        cells = [replace(c, batch="off") for c in eligible_spec().cell_list()]
        records, batched = run_chunk(cells)  # no override: cells decide
        assert batched == 0 and len(records) == 6
        # the override wins over the cell field
        _, forced = run_chunk(cells, batch="auto")
        assert forced == 6


@needs_numpy
class TestStoreEquivalence:
    def test_batched_report_byte_identical_to_serial_scalar(self, tmp_path):
        spec = eligible_spec()
        batched = JsonlStore(tmp_path / "batched.jsonl")
        scalar = JsonlStore(tmp_path / "scalar.jsonl")
        run_b = run_cells(spec.cells(), batched, workers=1, batch="auto")
        run_s = run_cells(spec.cells(), scalar, workers=1, batch="off")
        assert run_b.batched == 6 and run_s.batched == 0
        assert "batched=6" in run_b.summary()
        assert metrics_by_key(batched.records()) == metrics_by_key(scalar.records())
        assert report_text(batched, spec.name) == report_text(scalar, spec.name)

    def test_resume_over_batched_store_recomputes_nothing(self, tmp_path):
        spec = eligible_spec()
        store = JsonlStore(tmp_path / "r.jsonl")
        first = run_cells(spec.cells(), store, workers=1, batch="auto")
        assert first.executed == 6
        resumed = run_cells(spec.cells(), JsonlStore(store.path), workers=1)
        assert resumed.executed == 0 and resumed.skipped == 6
        # ...and a scalar resume over the batched store agrees too
        rerun = run_cells(spec.cells(), JsonlStore(store.path), workers=1,
                          batch="off")
        assert rerun.executed == 0 and rerun.skipped == 6

    def test_parallel_batched_equals_serial_scalar(self, tmp_path):
        spec = eligible_spec()
        pool = JsonlStore(tmp_path / "pool.jsonl")
        serial = JsonlStore(tmp_path / "serial.jsonl")
        run_p = run_cells(spec.cells(), pool, workers=3, batch="auto")
        run_cells(spec.cells(), serial, workers=1, batch="off")
        assert run_p.batched == 6
        assert metrics_by_key(pool.records()) == metrics_by_key(serial.records())


class TestKeyRegression:
    """``--batch off`` reproduces the PR-5-era store keys exactly.

    ``fixtures/pr5_store.jsonl`` is a result store in the pre-batch
    record shape: its configs have no ``batch`` field at all.  Both
    resuming over it and re-running its spec must line up key-for-key —
    the ``batch`` knob is execution routing, never identity.
    """

    FIXTURE_SPEC = CampaignSpec(
        name="pr5-fixture",
        base={"algorithm": "unconscious", "horizon": "100 * n",
              "stop_on_exploration": True, "placement": "offset-spread"},
        grid={"ring_size": [6, 8], "seed": [0, 1, 2]},
    )

    def fixture_records(self):
        lines = (FIXTURES / "pr5_store.jsonl").read_text().splitlines()
        return [json.loads(line) for line in lines]

    def test_fixture_predates_the_batch_field(self):
        for record in self.fixture_records():
            assert "batch" not in record["config"]

    def test_scalar_rerun_reproduces_every_fixture_key(self, tmp_path):
        store = JsonlStore(tmp_path / "r.jsonl")
        run_cells(self.FIXTURE_SPEC.cells(), store, workers=1, batch="off")
        assert ({r["key"] for r in store.records()}
                == {r["key"] for r in self.fixture_records()})
        assert (metrics_by_key(store.records())
                == metrics_by_key(self.fixture_records()))

    @needs_numpy
    def test_batched_rerun_reproduces_every_fixture_key(self, tmp_path):
        store = JsonlStore(tmp_path / "r.jsonl")
        run = run_cells(self.FIXTURE_SPEC.cells(), store, workers=1,
                        batch="auto")
        assert run.batched == 6
        assert (metrics_by_key(store.records())
                == metrics_by_key(self.fixture_records()))

    def test_resume_over_pr5_store_skips_everything(self, tmp_path):
        path = tmp_path / "pr5.jsonl"
        path.write_text((FIXTURES / "pr5_store.jsonl").read_text())
        resumed = run_cells(self.FIXTURE_SPEC.cells(), JsonlStore(path),
                            workers=1)
        assert resumed.executed == 0 and resumed.skipped == 6


class TestStrictMode:
    @needs_numpy
    def test_on_rejects_ineligible_cells_up_front(self, tmp_path):
        cells = [eligible_spec().cell_list()[0], scalar_only_cell()]
        with pytest.raises(ConfigurationError, match="not batch-eligible"):
            run_cells(cells, JsonlStore(tmp_path / "r.jsonl"), batch="on")

    def test_on_without_numpy_is_an_error(self, tmp_path, monkeypatch):
        monkeypatch.setattr(batch_mod, "HAVE_NUMPY", False)
        with pytest.raises(ConfigurationError, match="NumPy"):
            run_cells(eligible_spec().cell_list(),
                      JsonlStore(tmp_path / "r.jsonl"), batch="on")

    def test_unknown_mode_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError, match="batch"):
            run_cells(eligible_spec().cell_list(),
                      JsonlStore(tmp_path / "r.jsonl"), batch="sideways")


class TestNumpyFallback:
    """No NumPy: everything runs scalar, nothing else changes."""

    def test_auto_degrades_to_scalar(self, tmp_path, monkeypatch):
        monkeypatch.setattr(batch_mod, "HAVE_NUMPY", False)
        assert not batch_mod.numpy_available()
        spec = eligible_spec()
        store = JsonlStore(tmp_path / "r.jsonl")
        run = run_cells(spec.cells(), store, workers=1, batch="auto")
        assert run.executed == 6 and run.batched == 0
        assert store.completed_keys() == {c.key() for c in spec.cells()}

    @needs_numpy
    def test_scalar_records_match_batched_records(self, tmp_path, monkeypatch):
        spec = eligible_spec()
        batched = JsonlStore(tmp_path / "b.jsonl")
        run_cells(spec.cells(), batched, workers=1, batch="auto")
        monkeypatch.setattr(batch_mod, "HAVE_NUMPY", False)
        scalar = JsonlStore(tmp_path / "s.jsonl")
        run_cells(spec.cells(), scalar, workers=1, batch="auto")
        assert metrics_by_key(batched.records()) == metrics_by_key(scalar.records())


class TestChunkSizing:
    def test_scalar_sizing_unchanged(self):
        assert default_chunk_size(1000, 8) == 25
        assert default_chunk_size(40, 8) == 2
        assert default_chunk_size(1, 8) == 1

    def test_batch_sizing_targets_one_chunk_per_worker(self):
        assert default_chunk_size(1000, 8, batch=True) == 125
        assert default_chunk_size(8 * BATCH_WIDTH + 1, 8, batch=True) == BATCH_WIDTH
        assert default_chunk_size(1, 8, batch=True) == 1

    def test_batch_cap_is_the_vector_width(self):
        assert default_chunk_size(10 ** 6, 1, batch=True) == BATCH_WIDTH

    @needs_numpy
    def test_enqueue_sizes_chunks_for_the_batch_path(self, tmp_path):
        spec = eligible_spec(seeds=range(10), sizes=(6, 7, 8))  # 30 cells
        store = SqliteStore(tmp_path / "q.db", campaign=spec.name)
        queue, report = enqueue_campaign(spec, store)
        # all 30 cells eligible -> one wide chunk per local worker, not
        # the scalar 25-cell slivers
        expected = default_chunk_size(30, batch=True)
        sizes = [n for n, in store.connection().execute(
            "SELECT n_cells FROM chunks ORDER BY id")]
        assert max(sizes) == expected
        assert sum(sizes) == 30

    def test_enqueue_keeps_scalar_sizing_for_mixed_cells(self, tmp_path):
        cells = eligible_spec(seeds=range(3)).cell_list() + [scalar_only_cell()]
        spec = eligible_spec()
        store = SqliteStore(tmp_path / "q.db", campaign=spec.name)
        queue = WorkQueue(store)
        queue.enqueue(cells)
        sizes = [n for n, in store.connection().execute(
            "SELECT n_cells FROM chunks ORDER BY id")]
        assert max(sizes) <= 25


@needs_numpy
class TestFleetTelemetry:
    def test_worker_marks_batched_chunks(self, tmp_path):
        spec = eligible_spec()
        store = SqliteStore(tmp_path / "q.db", campaign=spec.name)
        queue, _ = enqueue_campaign(spec, store)
        report = run_worker(store, campaign=spec.name, worker_id="w0",
                            poll_s=0.01)
        assert report.cells_done == 6
        assert report.cells_batched == 6
        assert "batched=6" in report.summary()
        counts = queue.counts()
        assert counts.batched_done == counts.done > 0
        assert counts.cells_batched == 6
        for chunk in queue.recent_chunks():
            assert chunk.batched
            assert chunk.cells_per_s is None or chunk.cells_per_s > 0

    def test_scalar_worker_leaves_chunks_unmarked(self, tmp_path):
        spec = eligible_spec(name="scalar-fleet")
        store = SqliteStore(tmp_path / "q.db", campaign=spec.name)
        queue, _ = enqueue_campaign(spec, store)
        report = run_worker(store, campaign=spec.name, worker_id="w0",
                            poll_s=0.01, batch="off")
        assert report.cells_batched == 0
        counts = queue.counts()
        assert counts.batched_done == 0 and counts.cells_batched == 0

    def test_status_renders_batch_telemetry(self, tmp_path):
        spec = eligible_spec()
        store = SqliteStore(tmp_path / "q.db", campaign=spec.name)
        enqueue_campaign(spec, store)
        run_worker(store, campaign=spec.name, worker_id="w0", poll_s=0.01)
        status = fleet_status(store, campaign=spec.name)
        assert status.recent_chunks
        text = render_status(status)
        assert "batch   :" in text
        assert "batched=true" in text
        assert "cells/s" in text

    def test_mixed_fleet_report_identical_to_serial(self, tmp_path):
        """A batched fleet and a scalar serial run: same report bytes."""
        spec = eligible_spec(name="mixed-fleet")
        store = SqliteStore(tmp_path / "q.db", campaign=spec.name)
        enqueue_campaign(spec, store)
        run_worker(store, campaign=spec.name, worker_id="w0", poll_s=0.01)
        serial = JsonlStore(tmp_path / "serial.jsonl")
        run_cells(spec.cells(), serial, workers=1, batch="off")
        assert report_text(store, spec.name) == report_text(serial, spec.name)

    def test_old_store_schema_migrates_in_place(self, tmp_path):
        """A PR-5-era queue db (no telemetry columns) opens and works."""
        import sqlite3

        path = tmp_path / "old.db"
        conn = sqlite3.connect(path)
        # the chunks table as PR 5 created it, without batched/cells_per_s
        conn.executescript("""
            CREATE TABLE chunks (
                id           INTEGER PRIMARY KEY,
                campaign_key TEXT NOT NULL DEFAULT '',
                state        TEXT NOT NULL DEFAULT 'pending',
                cells        TEXT NOT NULL,
                cell_keys    TEXT NOT NULL,
                n_cells      INTEGER NOT NULL,
                created_at   REAL NOT NULL,
                done_at      REAL
            );
        """)
        conn.commit()
        conn.close()
        spec = eligible_spec(name="migrated")
        store = SqliteStore(path, campaign=spec.name)
        cols = {row[1] for row in store.connection().execute(
            "PRAGMA table_info(chunks)")}
        assert {"batched", "cells_per_s"} <= cols
        enqueue_campaign(spec, store)
        report = run_worker(store, campaign=spec.name, worker_id="w0",
                            poll_s=0.01)
        assert report.cells_done == 6


class TestCampaignRunSummary:
    def test_summary_omits_batched_when_zero(self):
        run = CampaignRun(total=5, skipped=0, executed=5, failed=0,
                          workers=1, elapsed_s=1.0)
        assert "batched" not in run.summary()


class TestPresetBatchIntent:
    """Preset drift must not silently shrink batch coverage.

    ``batch-smoke`` and ``batch-wide`` exist to exercise the vector
    path in CI: every cell must stay batch-eligible.  ``faults-smoke``
    deliberately pairs eligible fault-free twins with faulted cells
    that must stay scalar *because of the fault plan* — an eligibility
    regression in either direction changes what the preset tests.
    """

    @pytest.mark.parametrize("preset", ["batch-smoke", "batch-wide"])
    def test_all_cells_of_batch_presets_are_eligible(self, preset):
        from repro.campaigns.presets import get_spec
        from repro.core.batch import batch_ineligible_reason

        for cell in get_spec(preset).cell_list():
            reason = batch_ineligible_reason(cell)
            assert reason is None, f"{cell.key()}: {reason}"

    def test_faults_smoke_scalar_cells_are_exactly_the_faulted_ones(self):
        from repro.campaigns.presets import get_spec
        from repro.core.batch import batch_ineligible_key

        for cell in get_spec("faults-smoke").cell_list():
            key = batch_ineligible_key(cell)
            if cell.faults:
                assert key == "faults", f"{cell.key()}: {key}"
            else:
                assert key is None, f"{cell.key()}: {key}"
