"""``render_status`` edge cases: the telemetry the fleet shows when
things are *not* healthy — zero rates, dead workers, orphaned and
parked chunks, an empty completion window — plus the observability
additions (claim latency, chunk-rate percentiles, batch share)."""

from __future__ import annotations

import time

import pytest

from repro.campaigns import CampaignSpec, SqliteStore
from repro.campaigns.distributed import (
    WorkQueue,
    enqueue_campaign,
    fleet_status,
    render_batch_rejects,
    render_status,
    run_worker,
)
from repro.campaigns.distributed.queue import QueueCounts, WorkerInfo
from repro.campaigns.distributed.status import FleetStatus


def fast_spec(name="render-test", seeds=range(2), sizes=(6,)) -> CampaignSpec:
    return CampaignSpec(
        name=name,
        base={"algorithm": "unconscious", "horizon": "100 * n",
              "stop_on_exploration": True, "placement": "offset-spread"},
        grid={"ring_size": list(sizes), "seed": list(seeds)},
    )


def counts(**overrides) -> QueueCounts:
    base = dict(pending=0, leased=0, orphaned=0, done=0, cells_pending=0,
                cells_leased=0, cells_done=0, max_attempt=1)
    base.update(overrides)
    return QueueCounts(**base)


def make_status(**overrides) -> FleetStatus:
    queue_counts = overrides.pop("counts", counts())
    base = dict(
        campaign="edge", store_uri="sqlite:/tmp/x.db", counts=queue_counts,
        workers=(), alive=0, cells_completed=0, cells_errored=0,
        rate_cells_per_s=None, eta_s=None, lease_ttl_s=30.0,
        finished=False,
    )
    base.update(overrides)
    return FleetStatus(**base)


class FakeClock:
    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self):
        return self.now


class TestRenderEdgeCases:
    def test_zero_rate_shows_no_eta(self):
        text = render_status(make_status(
            counts=counts(pending=3, cells_pending=12)))
        assert "rate n/a" in text
        assert "ETA n/a" in text
        assert "ETA 0s" not in text

    def test_finished_campaign_says_done_not_eta(self):
        text = render_status(make_status(finished=True))
        assert "done" in text
        assert "finished: yes" in text
        assert "ETA" not in text.replace("ETA n/a", "")

    def test_no_workers_alive(self):
        now = time.time()
        gone = WorkerInfo(worker_id="w-dead", host="h", pid=1,
                          started_at=now - 600, last_seen=now - 300,
                          cells_done=4, chunks_done=1)
        text = render_status(make_status(workers=(gone,), alive=0))
        assert "workers : 0 alive / 1 gone" in text
        assert "gone " in text and "w-dead" in text

    def test_no_worker_ever_polled(self):
        text = render_status(make_status())
        assert "(no worker has polled yet)" in text

    def test_orphaned_and_parked_chunks_called_out(self):
        text = render_status(make_status(counts=counts(
            pending=1, leased=2, orphaned=2, failed=1, cells_failed=4,
            done=2, cells_pending=8, max_attempt=5)))
        assert "(2 orphaned)" in text
        assert "1 PARKED (4 cells; re-enqueue" in text
        assert "worst attempt 5" in text

    def test_never_enqueued_note(self):
        text = render_status(make_status(ever_enqueued=False))
        assert "no chunks have been enqueued" in text

    def test_empty_completion_window_renders_without_chunk_rows(self):
        # chunks exist but none completed in the rate window: no recent
        # chunk rows, no rate, no crash
        text = render_status(make_status(
            counts=counts(pending=2, cells_pending=6),
            recent_chunks=()))
        assert "chunk " not in text.split("workers")[0].split("chunks  :")[1]
        assert "rate n/a" in text

    def test_errored_cells_shown_inline(self):
        text = render_status(make_status(cells_completed=5, cells_errored=2))
        assert "(2 errored)" in text


class TestObservabilityLines:
    def test_absent_without_metrics(self):
        text = render_status(make_status())
        assert "latency :" not in text
        assert "rates   :" not in text

    def test_claim_latency_and_chunk_rates_render(self):
        status = make_status(
            claim_latency={"count": 8, "p50": 0.002, "p90": 0.004,
                           "p99": 0.01},
            chunk_rate={"count": 3, "p50": 100.0, "p90": 200.0,
                        "p99": 250.0},
        )
        text = render_status(status)
        assert "latency : claim p50=2.0ms p90=4.0ms p99=10.0ms (n=8)" in text
        assert "rates   : chunk cells/s p50=100 p90=200 p99=250" in text

    def test_batch_share_appended_to_batch_line(self):
        text = render_status(make_status(
            counts=counts(done=4, batched_done=2, cells_batched=10,
                          cells_done=20),
            batch_share=0.5))
        assert "batch   : 2/4 done chunks vectorized (10 cells, 50% of "
        assert "50% of done cells)" in text

    def test_batch_reject_table_renders_most_frequent_first(self):
        text = render_status(make_status(
            batch_rejects={"adversary": 12, "faults": 4}))
        assert ("scalar  : 16 cell routing(s) fell back to the scalar "
                "path, by reason:") in text
        adv = text.index("adversary  x12")
        flt = text.index("faults     x4")
        assert adv < flt

    def test_batch_reject_table_absent_when_nothing_rejected(self):
        text = render_status(make_status())
        assert "scalar  :" not in text
        assert render_batch_rejects(None) == []
        assert render_batch_rejects({}) == []

    def test_batch_reject_counts_from_snapshot(self):
        from repro.campaigns.executor import batch_reject_counts

        snap = {
            "executor.batch_reject.adversary": {"type": "counter", "value": 3},
            "executor.batch_reject.faults": {"type": "counter", "value": 7},
            "executor.batch_reject.topology": {"type": "counter", "value": 0},
            "executor.cells": {"type": "counter", "value": 99},
            "executor.cell_s": {"type": "histogram", "count": 4},
        }
        assert batch_reject_counts(snap) == {"faults": 7, "adversary": 3}
        assert list(batch_reject_counts(snap)) == ["faults", "adversary"]
        assert batch_reject_counts(None) == {}

    def test_run_summary_includes_reject_reasons(self):
        from repro.campaigns.executor import CampaignRun

        run = CampaignRun(
            total=10, skipped=0, executed=10, failed=0, elapsed_s=1.0,
            workers=1, batched=6,
            metrics={"executor.batch_reject.adversary":
                     {"type": "counter", "value": 4}})
        assert "batched=6 scalar[adversary=4]" in run.summary()
        plain = CampaignRun(total=1, skipped=0, executed=1, failed=0,
                            elapsed_s=0.1, workers=1)
        assert "scalar[" not in plain.summary()

    def test_worker_row_average_rate(self):
        now = time.time()
        w = WorkerInfo(worker_id="w1", host="h", pid=1,
                       started_at=now - 10.0, last_seen=now,
                       cells_done=500, chunks_done=5)
        text = render_status(make_status(workers=(w,), alive=1))
        assert "~50 cells/s" in text


class TestFleetStatusFromStore:
    def test_live_queue_populates_observability_fields(
            self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_METRICS", "1")
        from repro.obs import metrics as obs_metrics

        obs_metrics.reset()
        spec = fast_spec()
        store = SqliteStore(tmp_path / "q.db", campaign=spec.name)
        enqueue_campaign(spec, store, chunk_size=1)
        run_worker(store, campaign=spec.name, worker_id="w1")
        status = fleet_status(store)
        assert status.finished
        assert status.claim_latency is not None
        assert status.claim_latency["count"] >= 2
        assert status.claim_latency["p50"] > 0
        assert status.chunk_rate is not None and status.chunk_rate["count"] == 2
        text = render_status(status)
        assert "latency : claim p50=" in text
        obs_metrics.reset()

    def test_live_rejects_surface_in_status(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_METRICS", "1")
        from repro.obs import metrics as obs_metrics

        obs_metrics.reset()
        spec = CampaignSpec(
            name="render-reject",
            base={"algorithm": "known-bound", "horizon": "100 * n",
                  "adversary": "prevent-meetings"},
            grid={"ring_size": [6], "seed": [0, 1]},
        )
        store = SqliteStore(tmp_path / "rej.db", campaign=spec.name)
        enqueue_campaign(spec, store, chunk_size=2)
        run_worker(store, campaign=spec.name, worker_id="w1")
        status = fleet_status(store)
        assert status.batch_rejects == {"adversary": 2}
        assert "scalar  : 2 cell routing(s)" in render_status(status)
        obs_metrics.reset()

    def test_without_metrics_fields_stay_none(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_METRICS", raising=False)
        spec = fast_spec(name="render-plain")
        store = SqliteStore(tmp_path / "p.db", campaign=spec.name)
        enqueue_campaign(spec, store, chunk_size=1)
        run_worker(store, campaign=spec.name, worker_id="w1")
        status = fleet_status(store)
        assert status.claim_latency is None
        # chunk cells/s lives in the chunks table, not the metrics
        # registry: present regardless of --metrics
        assert status.chunk_rate is not None

    def test_straggler_hint_renders_when_set(self):
        hint = "chunk 7 (w-slow) running 9.0s vs 2.0s median chunk"
        assert f"slowest : {hint}" in render_status(
            make_status(straggler=hint))
        assert "slowest" not in render_status(make_status())

    def test_live_straggler_hint_from_queue(self, tmp_path):
        # finish one chunk (the baseline), then claim a second and let
        # the clock run past 2x the median: status names the laggard
        spec = fast_spec(name="render-straggle", seeds=range(4))
        store = SqliteStore(tmp_path / "s.db", campaign=spec.name)
        queue, _ = enqueue_campaign(spec, store, chunk_size=2)
        run_worker(store, campaign=spec.name, worker_id="w-fast",
                   max_chunks=1)
        claim = queue.claim("w-slow")
        assert claim is not None
        clock = FakeClock(time.time() + 3600.0)
        status = fleet_status(store, clock=clock)
        assert status.straggler is not None
        assert f"chunk {claim.chunk_id} (w-slow)" in status.straggler
        assert "straggler" in status.straggler
        assert "slowest :" in render_status(status, clock=clock)

    def test_active_leases_and_chunk_seconds(self, tmp_path):
        spec = fast_spec(name="render-leases", seeds=range(4))
        store = SqliteStore(tmp_path / "l.db", campaign=spec.name)
        queue, _ = enqueue_campaign(spec, store, chunk_size=2)
        assert queue.active_leases() == []
        assert queue.chunk_seconds() == []
        run_worker(store, campaign=spec.name, worker_id="w1", max_chunks=1)
        seconds = queue.chunk_seconds()
        assert len(seconds) == 1 and seconds[0] > 0
        claim = queue.claim("w2")
        leases = queue.active_leases()
        assert [(l.chunk_id, l.worker_id, l.n_cells) for l in leases] \
            == [(claim.chunk_id, "w2", 2)]
        assert leases[0].attempt == 1
        assert claim.created_at is not None
        assert leases[0].acquired_at >= claim.created_at

    def test_store_metrics_requires_sqlite(self, tmp_path):
        from repro.campaigns import JsonlStore
        from repro.campaigns.distributed import store_metrics
        from repro.core.errors import ConfigurationError

        store = JsonlStore(tmp_path / "r.jsonl", campaign="x")
        with pytest.raises(ConfigurationError, match="SQLite"):
            store_metrics(store)
