"""Spec expansion: grids, variants, horizons, placements, hashing."""

import pytest

from repro.campaigns.presets import get_spec, load_spec
from repro.campaigns.spec import (
    CampaignSpec,
    CellConfig,
    resolve_horizon,
    resolve_positions,
)
from repro.core.errors import ConfigurationError
from repro.theory.bounds import no_chirality_timeout


def cell(**overrides) -> CellConfig:
    fields = dict(algorithm="unconscious", ring_size=8, max_rounds=100)
    fields.update(overrides)
    return CellConfig(**fields)


class TestCellConfig:
    def test_key_is_stable_across_instances(self):
        assert cell().key() == cell().key()

    def test_key_changes_with_any_simulation_field(self):
        base = cell().key()
        assert cell(seed=1).key() != base
        assert cell(ring_size=9).key() != base
        assert cell(max_rounds=101).key() != base

    def test_key_ignores_cosmetic_label(self):
        # renaming a variant must not invalidate its cached results
        assert cell(label="renamed").key() == cell().key()

    def test_dict_round_trip(self):
        original = cell(flipped=(1,), positions=(0, 4), placement="explicit")
        assert CellConfig.from_dict(original.to_dict()) == original

    def test_round_trip_preserves_key_through_json_types(self):
        original = cell(flipped=(1, 2))
        rebuilt = CellConfig.from_dict(original.to_dict())
        assert rebuilt.key() == original.key()

    def test_from_dict_accepts_null_flipped(self):
        # spec files may say "flipped": null; that means "no flips"
        rebuilt = CellConfig.from_dict({**cell().to_dict(), "flipped": None})
        assert rebuilt.flipped == ()

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ConfigurationError, match="unknown cell fields"):
            CellConfig.from_dict({**cell().to_dict(), "typo": 1})

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            cell(ring_size=2)
        with pytest.raises(ConfigurationError):
            cell(agents=0)
        with pytest.raises(ConfigurationError):
            cell(max_rounds=0)


class TestPlacements:
    def test_spread(self):
        assert resolve_positions("spread", ring_size=8, agents=2) == (0, 4)

    def test_offset_spread_matches_table2_positions(self):
        assert resolve_positions("offset-spread", ring_size=8, agents=2) == (1, 5)

    def test_thirds_matches_table4_positions(self):
        assert resolve_positions("thirds", ring_size=9, agents=3) == (1, 4, 7)
        assert resolve_positions("thirds", ring_size=9, agents=2) == (1, 4)

    def test_origin(self):
        assert resolve_positions("origin", ring_size=8, agents=3) == (0, 0, 0)

    def test_explicit_requires_positions(self):
        with pytest.raises(ConfigurationError):
            resolve_positions("explicit", ring_size=8, agents=2)

    def test_unknown_placement(self):
        with pytest.raises(ConfigurationError, match="unknown placement"):
            resolve_positions("diagonal", ring_size=8, agents=2)


class TestHorizon:
    def test_integer_passthrough(self):
        assert resolve_horizon(42, n=8, bound=None, agents=2) == 42

    def test_expression_over_n(self):
        assert resolve_horizon("100 * n", n=8, bound=None, agents=2) == 800

    def test_bound_defaults_to_n(self):
        assert resolve_horizon("3 * N - 6", n=8, bound=None, agents=2) == 18
        assert resolve_horizon("3 * N - 6", n=8, bound=10, agents=2) == 24

    def test_paper_bound_helpers_available(self):
        assert resolve_horizon(
            "no_chirality_timeout(n) + 10", n=8, bound=None, agents=2
        ) == no_chirality_timeout(8) + 10

    def test_bad_expression(self):
        with pytest.raises(ConfigurationError, match="bad horizon"):
            resolve_horizon("import os", n=8, bound=None, agents=2)

    def test_nonpositive_result(self):
        with pytest.raises(ConfigurationError):
            resolve_horizon("n - 100", n=8, bound=None, agents=2)


class TestCampaignSpec:
    def spec(self) -> CampaignSpec:
        return CampaignSpec(
            name="t",
            base={"algorithm": "unconscious", "max_rounds": 100},
            grid={"ring_size": [6, 8], "seed": [0, 1, 2]},
        )

    def test_grid_product(self):
        cells = self.spec().cell_list()
        assert len(cells) == 6
        assert {(c.ring_size, c.seed) for c in cells} == {
            (n, s) for n in (6, 8) for s in (0, 1, 2)
        }

    def test_expansion_is_deterministic(self):
        spec = self.spec()
        assert [c.key() for c in spec.cells()] == [c.key() for c in spec.cells()]

    def test_variant_scalar_pins_grid_dimension(self):
        spec = self.spec()
        spec.variants = [{"label": "pinned", "ring_size": 6}]
        cells = spec.cell_list()
        assert len(cells) == 3
        assert {c.ring_size for c in cells} == {6}
        assert {c.label for c in cells} == {"pinned"}

    def test_variant_grid_overrides_dimension(self):
        spec = self.spec()
        spec.variants = [{"grid": {"ring_size": [12]}}]
        assert {c.ring_size for c in spec.cell_list()} == {12}

    def test_agents_default_comes_from_registry(self):
        # et-exact is a 3-agent protocol; a spec that omits agents must
        # not silently run it with CellConfig's generic default of 2
        spec = CampaignSpec(
            name="t",
            base={"algorithm": "et-exact", "transport": "et", "max_rounds": 100},
            grid={"ring_size": [6]},
        )
        assert [c.agents for c in spec.cells()] == [3]

    def test_explicit_agents_overrides_registry_default(self):
        spec = CampaignSpec(
            name="t",
            base={"algorithm": "et-exact", "transport": "et",
                  "agents": 2, "max_rounds": 100},
            grid={"ring_size": [6]},
        )
        assert [c.agents for c in spec.cells()] == [2]

    def test_variant_horizon_resolved_per_cell(self):
        spec = CampaignSpec(
            name="t",
            base={"algorithm": "unconscious"},
            grid={"ring_size": [6, 8]},
            variants=[{"horizon": "10 * n"}],
        )
        assert {c.max_rounds for c in spec.cells()} == {60, 80}

    def test_merged_spec_covers_both_parts(self):
        merged = CampaignSpec.merged(
            "both", [get_spec("table2-fsync"), get_spec("table4-ssync")]
        )
        t2 = get_spec("table2-fsync").cell_list()
        t4 = get_spec("table4-ssync").cell_list()
        assert [c.key() for c in merged.cells()] == [
            c.key() for c in t2 + t4
        ]

    def test_spec_dict_round_trip(self):
        spec = get_spec("table2-fsync")
        rebuilt = CampaignSpec.from_dict(spec.to_dict())
        assert [c.key() for c in rebuilt.cells()] == [c.key() for c in spec.cells()]

    def test_restricted_limits_cells(self):
        spec = self.spec()
        limited = spec.restricted(2)
        assert [c.key() for c in limited.cells()] == [
            c.key() for c in spec.cell_list()[:2]
        ]


class TestPresets:
    def test_known_sizes(self):
        assert get_spec("table2-fsync").size() == 90
        assert get_spec("table4-ssync").size() == 108
        assert get_spec("paper-tables").size() == 198
        assert get_spec("smoke").size() == 24

    def test_paper_tables_is_at_least_100_cells(self):
        assert get_spec("paper-tables").size() >= 100

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError, match="unknown campaign spec"):
            get_spec("no-such-spec")

    def test_table2_matches_bench_configuration(self):
        cells = get_spec("table2-fsync").cell_list()
        theorem3 = [c for c in cells if c.label == "t2.1-theorem3-known-bound"]
        assert {c.ring_size for c in theorem3} == {8, 16, 32, 64}
        assert {c.seed for c in theorem3} == set(range(5))
        assert all(c.resolved_positions() == (1, 1 + c.ring_size // 2)
                   for c in theorem3)
        assert all(c.max_rounds == 3 * c.ring_size - 6 + 5 for c in theorem3)

    def test_load_spec_json(self, tmp_path):
        spec = get_spec("smoke")
        path = tmp_path / "spec.json"
        import json
        path.write_text(json.dumps(spec.to_dict()))
        loaded = load_spec(path)
        assert [c.key() for c in loaded.cells()] == [c.key() for c in spec.cells()]

    def test_load_spec_yaml(self, tmp_path):
        yaml = pytest.importorskip("yaml")
        spec = get_spec("smoke")
        path = tmp_path / "spec.yaml"
        path.write_text(yaml.safe_dump(spec.to_dict()))
        loaded = load_spec(path)
        assert [c.key() for c in loaded.cells()] == [c.key() for c in spec.cells()]
