"""Distributed execution: lease queue, workers, crash recovery, telemetry.

The acceptance properties from the subsystem's contract are all here:

* two concurrent workers on one SQLite store complete a >= 100-cell
  campaign with zero duplicated cell keys and a byte-identical
  ``campaign report`` versus a serial run;
* killing a worker mid-campaign leaves an orphaned lease that a
  surviving worker reclaims (both the deterministic ghost-lease shape
  and a real SIGKILL);
* >= 4 processes claiming leases and appending simultaneously lose no
  records and duplicate no cell execution;
* ``campaign status`` reflects the fleet throughout.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time

import pytest

from repro.campaigns import (
    CampaignSpec,
    CellConfig,
    JsonlStore,
    SqliteStore,
    render_rows,
    run_cells,
)
from repro.campaigns.distributed import (
    LeaseLost,
    WorkQueue,
    enqueue_campaign,
    fleet_status,
    render_status,
    run_distributed,
    run_worker,
    watch_status,
)
from repro.core.errors import ConfigurationError

CTX = multiprocessing.get_context(
    "fork" if "fork" in multiprocessing.get_all_start_methods() else None)


def fast_spec(name="dist-test", seeds=range(3), sizes=(6, 8)) -> CampaignSpec:
    return CampaignSpec(
        name=name,
        base={"algorithm": "unconscious", "horizon": "100 * n",
              "stop_on_exploration": True, "placement": "offset-spread"},
        grid={"ring_size": list(sizes), "seed": list(seeds)},
    )


def make_queue(tmp_path, spec, *, lease_ttl_s=30.0, clock=time.time,
               name="q.db") -> WorkQueue:
    store = SqliteStore(tmp_path / name, campaign=spec.name)
    return WorkQueue(store, lease_ttl_s=lease_ttl_s, clock=clock)


class FakeClock:
    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def metrics_by_key(store):
    return {r["key"]: r["metrics"] for r in store.records() if "error" not in r}


def report_text(store, name):
    return render_rows(store.query().table(), title=f"campaign {name}")


def duplicate_keys(store) -> list[str]:
    return [
        key for key, in store.connection().execute(
            "SELECT cell_key FROM results GROUP BY cell_key "
            "HAVING COUNT(*) > 1")
    ]


# -- worker-process entry points (top level: fork/spawn picklable) --------

def _worker_main(path, campaign, worker_id, ttl):
    run_worker(f"sqlite:{path}", campaign=campaign, worker_id=worker_id,
               lease_ttl_s=ttl, poll_s=0.02)


def _slow_worker_main(path, campaign, worker_id, ttl, delay_s):
    """A worker whose every cell takes >= delay_s (for mid-run kills)."""
    from repro.campaigns.distributed import worker as worker_mod

    real = worker_mod.executor_module.execute_cell

    def slow(cell):
        time.sleep(delay_s)
        return real(cell)

    worker_mod.executor_module.execute_cell = slow
    run_worker(f"sqlite:{path}", campaign=campaign, worker_id=worker_id,
               lease_ttl_s=ttl, poll_s=0.02, batch="off")


class TestWorkQueue:
    def test_jsonl_store_rejected_with_clear_error(self, tmp_path):
        with pytest.raises(ConfigurationError, match="sqlite"):
            WorkQueue(JsonlStore(tmp_path / "r.jsonl", campaign="x"))

    def test_enqueue_skips_done_failed_and_queued(self, tmp_path):
        spec = fast_spec()
        cells = spec.cell_list()
        queue = make_queue(tmp_path, spec)
        store = queue.store
        # one completed, one errored, the rest fresh
        store.append({"key": cells[0].key(), "config": cells[0].to_dict(),
                      "metrics": {"rounds": 1}, "elapsed_s": 0.0})
        store.append({"key": cells[1].key(), "config": cells[1].to_dict(),
                      "error": "boom"})
        report = queue.enqueue(cells, chunk_size=2)
        assert report.skipped_done == 1
        assert report.skipped_failed == 1
        assert report.enqueued_cells == len(cells) - 2
        # a second enqueue double-queues nothing
        again = queue.enqueue(cells, chunk_size=2)
        assert again.enqueued_cells == 0
        assert again.skipped_queued == len(cells) - 2
        # retry_failed re-queues exactly the errored cell
        retried = queue.enqueue(cells, chunk_size=2, retry_failed=True)
        assert retried.enqueued_cells == 1
        assert cells[1].key() in queue.queued_cell_keys()

    def test_claim_heartbeat_complete_lifecycle(self, tmp_path):
        from repro.campaigns.executor import execute_cell

        spec = fast_spec(seeds=(0,))
        queue = make_queue(tmp_path, spec)
        queue.enqueue(spec.cell_list(), chunk_size=2)
        claim = queue.claim("w1")
        assert claim.attempt == 1 and claim.stolen_from is None
        assert queue.heartbeat(claim.chunk_id, "w1")
        assert not queue.heartbeat(claim.chunk_id, "imposter")
        records = [execute_cell(CellConfig.from_dict(d)) for d in claim.cells]
        queue.complete(claim.chunk_id, "w1", records)
        assert queue.store.completed_keys() >= {r["key"] for r in records}
        counts = queue.counts()
        assert counts.done == 1 and counts.cells_done == len(records)

    def test_fresh_leases_are_not_claimable(self, tmp_path):
        spec = fast_spec(seeds=(0,), sizes=(6,))
        queue = make_queue(tmp_path, spec)
        queue.enqueue(spec.cell_list(), chunk_size=100)
        assert queue.claim("w1") is not None
        assert queue.claim("w2") is None       # only chunk is freshly leased
        assert not queue.finished()            # ...and not done yet

    def test_expired_lease_is_stolen_with_attempt_count(self, tmp_path):
        clock = FakeClock()
        spec = fast_spec(seeds=(0,), sizes=(6,))
        queue = make_queue(tmp_path, spec, lease_ttl_s=10, clock=clock)
        queue.enqueue(spec.cell_list(), chunk_size=100)
        first = queue.claim("doomed")
        clock.advance(5)
        assert queue.claim("vulture") is None  # lease still fresh
        clock.advance(6)                       # heartbeat now 11s old > TTL
        assert queue.counts().orphaned == 1
        stolen = queue.claim("vulture")
        assert stolen is not None
        assert stolen.chunk_id == first.chunk_id
        assert stolen.attempt == 2
        assert stolen.stolen_from == "doomed"
        # the original holder has lost the lease
        assert not queue.heartbeat(first.chunk_id, "doomed")

    def test_complete_after_steal_raises_and_writes_nothing(self, tmp_path):
        clock = FakeClock()
        spec = fast_spec(seeds=(0,), sizes=(6,))
        queue = make_queue(tmp_path, spec, lease_ttl_s=10, clock=clock)
        queue.enqueue(spec.cell_list(), chunk_size=100)
        claim = queue.claim("doomed")
        clock.advance(11)
        queue.claim("vulture")
        fake = [{"key": "should-never-land", "config": {}, "metrics": {}}]
        with pytest.raises(LeaseLost):
            queue.complete(claim.chunk_id, "doomed", fake)
        assert len(queue.store) == 0           # nothing was recorded

    def test_release_returns_chunk_to_pending(self, tmp_path):
        spec = fast_spec(seeds=(0,), sizes=(6,))
        queue = make_queue(tmp_path, spec, lease_ttl_s=10)
        queue.enqueue(spec.cell_list(), chunk_size=100)
        claim = queue.claim("w1")
        assert queue.release(claim.chunk_id, "w1")
        assert queue.counts().pending == 1
        assert queue.claim("w2") is not None   # immediately claimable again


class TestRunWorker:
    def test_single_worker_drains_and_matches_serial(self, tmp_path):
        spec = fast_spec()
        serial = JsonlStore(tmp_path / "serial.jsonl", campaign=spec.name)
        run_cells(spec.cell_list(), serial, workers=1)

        queue = make_queue(tmp_path, spec)
        queue.enqueue(spec.cell_list(), chunk_size=2)
        report = run_worker(queue.store, worker_id="solo", lease_ttl_s=10,
                            poll_s=0.01)
        assert report.cells_done == len(spec.cell_list())
        assert report.chunks_done == queue.counts().done
        assert queue.finished()
        assert metrics_by_key(queue.store) == metrics_by_key(serial)

    def test_worker_skips_cells_completed_out_of_band(self, tmp_path):
        spec = fast_spec(seeds=(0,))
        queue = make_queue(tmp_path, spec)
        queue.enqueue(spec.cell_list(), chunk_size=100)
        cell = spec.cell_list()[0]
        # another host finishes this cell after it was enqueued
        queue.store.append({"key": cell.key(), "config": cell.to_dict(),
                            "metrics": {"rounds": 1}, "elapsed_s": 0.0})
        report = run_worker(queue.store, worker_id="w", lease_ttl_s=10,
                            poll_s=0.01)
        assert report.cells_skipped == 1
        assert duplicate_keys(queue.store) == []

    def test_worker_records_cell_errors_and_finishes(self, tmp_path):
        spec = fast_spec(seeds=(0,), sizes=(6,))
        bad = CellConfig(algorithm="unconscious", ring_size=8, max_rounds=10,
                         placement="explicit", positions=None)
        queue = make_queue(tmp_path, spec)
        queue.enqueue(spec.cell_list() + [bad], chunk_size=2)
        report = run_worker(queue.store, worker_id="w", lease_ttl_s=10,
                            poll_s=0.01)
        assert report.cells_failed == 1
        assert queue.finished()
        assert queue.store.error_keys() == {bad.key()}

    def test_surviving_worker_reclaims_a_dead_workers_lease(self, tmp_path):
        """The deterministic crash shape: a claimed chunk whose holder
        never heartbeats again is exactly what SIGKILL leaves behind."""
        spec = fast_spec()
        queue = make_queue(tmp_path, spec, lease_ttl_s=0.2)
        queue.enqueue(spec.cell_list(), chunk_size=4)
        ghost = queue.claim("ghost")
        assert ghost is not None
        report = run_worker(queue.store, worker_id="survivor",
                            lease_ttl_s=0.2, poll_s=0.02)
        assert report.chunks_stolen >= 1
        assert queue.finished()
        assert queue.store.completed_keys() == {
            c.key() for c in spec.cell_list()}
        assert duplicate_keys(queue.store) == []


class TestDistributedAcceptance:
    """The subsystem's headline guarantees, with real worker processes."""

    def test_two_workers_hundred_cells_matches_serial_byte_for_byte(
            self, tmp_path):
        spec = fast_spec(seeds=range(50))          # 50 x 2 sizes = 100 cells
        cells = spec.cell_list()
        assert len(cells) >= 100
        serial = SqliteStore(tmp_path / "serial.db", campaign=spec.name)
        run_cells(cells, serial, workers=1)

        queue = make_queue(tmp_path, spec, lease_ttl_s=10, name="fleet.db")
        queue.enqueue(cells, chunk_size=5)
        procs = [
            CTX.Process(target=_worker_main,
                        args=(str(queue.store.path), spec.name, f"w{i}", 10.0))
            for i in range(2)
        ]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(timeout=120)
            assert proc.exitcode == 0
        assert queue.finished()
        assert duplicate_keys(queue.store) == []
        queue.store.invalidate_caches()    # workers wrote from other processes
        assert queue.store.completed_keys() == {c.key() for c in cells}
        assert metrics_by_key(queue.store) == metrics_by_key(serial)
        assert (report_text(queue.store, spec.name)
                == report_text(serial, spec.name))
        # telemetry saw both workers
        status = fleet_status(queue.store, lease_ttl_s=10)
        assert {w.worker_id for w in status.workers} == {"w0", "w1"}
        assert status.finished and status.cells_completed == len(cells)

    def test_sigkilled_worker_leaves_orphan_that_survivor_reclaims(
            self, tmp_path):
        spec = fast_spec(seeds=range(4))           # 8 cells
        cells = spec.cell_list()
        serial = SqliteStore(tmp_path / "serial.db", campaign=spec.name)
        run_cells(cells, serial, workers=1)

        ttl = 0.8
        queue = make_queue(tmp_path, spec, lease_ttl_s=ttl, name="fleet.db")
        queue.enqueue(cells, chunk_size=4)
        doomed = CTX.Process(
            target=_slow_worker_main,
            args=(str(queue.store.path), spec.name, "doomed", ttl, 0.4))
        doomed.start()
        # wait until it actually holds a lease, then kill -9 mid-chunk
        deadline = time.time() + 30
        while queue.counts().leased == 0:
            assert time.time() < deadline, "worker never claimed a lease"
            assert doomed.is_alive()
            time.sleep(0.02)
        os.kill(doomed.pid, signal.SIGKILL)
        doomed.join(timeout=30)
        # the lease outlives its holder, then ages into an orphan
        assert queue.counts().leased >= 1
        deadline = time.time() + 30
        while queue.counts().orphaned == 0:
            assert time.time() < deadline, "lease never aged into an orphan"
            time.sleep(0.05)
        status = fleet_status(queue.store, lease_ttl_s=ttl)
        assert status.counts.orphaned >= 1
        assert "orphaned" in render_status(status)
        # a surviving worker steals the orphan and drains the campaign
        report = run_worker(queue.store, worker_id="survivor",
                            lease_ttl_s=ttl, poll_s=0.05)
        assert report.chunks_stolen >= 1
        assert queue.finished()
        assert duplicate_keys(queue.store) == []
        assert metrics_by_key(queue.store) == metrics_by_key(serial)
        assert (report_text(queue.store, spec.name)
                == report_text(serial, spec.name))


class TestConcurrentStress:
    def test_four_processes_no_duplicates_no_lost_records(self, tmp_path):
        """>= 4 workers claiming and appending simultaneously: every cell
        key lands exactly once, none is lost."""
        spec = fast_spec(seeds=range(20))          # 40 cells
        cells = spec.cell_list()
        queue = make_queue(tmp_path, spec, lease_ttl_s=10, name="stress.db")
        queue.enqueue(cells, chunk_size=1)         # maximal claim contention
        procs = [
            CTX.Process(target=_worker_main,
                        args=(str(queue.store.path), spec.name, f"s{i}", 10.0))
            for i in range(4)
        ]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(timeout=120)
            assert proc.exitcode == 0
        assert queue.finished()
        queue.store.invalidate_caches()    # workers wrote from other processes
        assert queue.store.completed_keys() == {c.key() for c in cells}
        assert duplicate_keys(queue.store) == []
        assert len(queue.store) == len(cells)
        # every worker that completed work is visible in telemetry
        done_by = {w.worker_id: w.cells_done for w in queue.workers()}
        assert sum(done_by.values()) == len(cells)


class TestRunDistributed:
    def test_matches_serial_and_resumes(self, tmp_path):
        spec = fast_spec()
        serial = JsonlStore(tmp_path / "serial.jsonl", campaign=spec.name)
        run_cells(spec.cell_list(), serial, workers=1)
        store = SqliteStore(tmp_path / "d.db", campaign=spec.name)
        run = run_distributed(spec, store, workers=2, chunk_size=2,
                              lease_ttl_s=10)
        assert run.executed == len(spec.cell_list())
        assert run.failed == 0 and run.workers == 2
        assert metrics_by_key(store) == metrics_by_key(serial)
        # a second distributed run is a no-op resume
        again = run_distributed(spec, store, workers=2, lease_ttl_s=10)
        assert again.executed == 0
        assert again.skipped == len(spec.cell_list())

    def test_jsonl_store_raises(self, tmp_path):
        with pytest.raises(ConfigurationError, match="sqlite"):
            run_distributed(fast_spec(), JsonlStore(tmp_path / "r.jsonl"),
                            workers=1)

    def test_enqueue_campaign_and_watch_status(self, tmp_path, capsys):
        spec = fast_spec(seeds=(0,))
        queue, report = enqueue_campaign(
            spec, SqliteStore(tmp_path / "w.db"), chunk_size=1)
        assert report.chunks == len(spec.cell_list())
        status = watch_status(queue.store, lease_ttl_s=10, interval_s=0.01,
                              max_snapshots=1)
        assert not status.finished
        run_worker(queue.store, worker_id="w", lease_ttl_s=10, poll_s=0.01)
        final = watch_status(queue.store, lease_ttl_s=10, interval_s=0.01)
        assert final.finished
        text = render_status(final)
        assert "fleet status" in text and "finished: yes" in text


class TestDistributedCli:
    def run_cli(self, *argv):
        from repro.cli import main

        return main(list(argv))

    def test_enqueue_worker_status_roundtrip(self, tmp_path, capsys):
        db = f"sqlite:{tmp_path}/smoke.db"
        assert self.run_cli(
            "campaign", "enqueue", "--spec", "smoke", "--store", db,
            "--chunk-size", "4") == 0
        assert "enqueued=24" in capsys.readouterr().out
        assert self.run_cli(
            "campaign", "worker", "--campaign", "smoke", "--store", db,
            "--lease-ttl", "10", "--poll", "0.01") == 0
        out = capsys.readouterr().out
        assert "chunks=6" in out
        assert self.run_cli(
            "campaign", "status", "--spec", "smoke", "--store", db) == 0
        out = capsys.readouterr().out
        assert "finished: yes" in out and "6 done" in out

    def test_run_distributed_flag(self, tmp_path, capsys):
        db = f"sqlite:{tmp_path}/d.db"
        assert self.run_cli(
            "campaign", "run", "--spec", "smoke", "--limit", "6",
            "--distributed", "--workers", "2", "--store", db,
            "--lease-ttl", "10", "--no-report") == 0
        assert "[distributed]" in capsys.readouterr().out

    def test_status_without_store_fails_cleanly(self, tmp_path, capsys,
                                                monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert self.run_cli("campaign", "status", "--spec", "smoke") == 1
        assert "no result store" in capsys.readouterr().err

    def test_report_errors_listing(self, tmp_path, capsys):
        spec = fast_spec(seeds=(0,), sizes=(6,))
        store = SqliteStore(tmp_path / "e.db", campaign="smoke")
        bad = CellConfig(algorithm="unconscious", ring_size=8, max_rounds=10,
                         placement="explicit", positions=None, label="bad-cell")
        run_cells(spec.cell_list() + [bad], store, workers=1)
        assert self.run_cli(
            "campaign", "report", "--spec", "smoke",
            "--store", f"sqlite:{tmp_path}/e.db", "--errors") == 0
        out = capsys.readouterr().out
        assert "errored cells" in out
        assert "bad-cell" in out and "ConfigurationError" in out


class TestReviewRegressions:
    """Fixes from review: keeper heartbeats, resume width, identity rows,
    graceful release."""

    def test_lease_keeper_prevents_steal_during_slow_cell(self, tmp_path):
        """A cell slower than the TTL must not get a healthy worker's
        chunk stolen: the keeper thread heartbeats while it computes."""
        import threading  # noqa: F401  (documents the threaded keeper)

        from repro.campaigns.distributed.worker import LeaseKeeper

        spec = fast_spec(seeds=(0,), sizes=(6,))
        queue = make_queue(tmp_path, spec, lease_ttl_s=0.3)
        queue.enqueue(spec.cell_list(), chunk_size=100)
        claim = queue.claim("steady")
        vulture = WorkQueue(SqliteStore(queue.store.path, campaign=spec.name),
                            lease_ttl_s=0.3)
        with LeaseKeeper(queue, claim.chunk_id, "steady") as keeper:
            deadline = time.time() + 1.0   # > 3x TTL of main-thread silence
            while time.time() < deadline:
                assert vulture.claim("vulture") is None
                time.sleep(0.05)
            assert not keeper.lost.is_set()
        # once the keeper stops (worker died), the lease ages out
        time.sleep(0.4)
        stolen = vulture.claim("vulture")
        assert stolen is not None and stolen.stolen_from == "steady"

    def test_resume_run_uses_full_worker_width(self, tmp_path):
        """A distributed re-run that enqueues nothing new must still drain
        leftover chunks at the requested width, not one worker."""
        spec = fast_spec()                     # 6 cells -> 3 chunks of 2
        store = SqliteStore(tmp_path / "r.db", campaign=spec.name)
        WorkQueue(store, lease_ttl_s=10).enqueue(
            spec.cell_list(), chunk_size=2)
        run = run_distributed(spec, store, workers=2, lease_ttl_s=10)
        assert run.workers == 2
        assert run.executed == len(spec.cell_list())

    def test_worker_row_follows_its_latest_campaign(self, tmp_path):
        """A reused worker_id shows up in the campaign it polls *now*."""
        path = tmp_path / "shared.db"
        spec_a = fast_spec(name="camp-a", seeds=(0,), sizes=(6,))
        spec_b = fast_spec(name="camp-b", seeds=(0,), sizes=(8,))
        queue_a = WorkQueue(SqliteStore(path, campaign="camp-a"),
                            lease_ttl_s=10)
        queue_b = WorkQueue(SqliteStore(path, campaign="camp-b"),
                            lease_ttl_s=10)
        queue_a.enqueue(spec_a.cell_list(), chunk_size=100)
        queue_b.enqueue(spec_b.cell_list(), chunk_size=100)
        queue_a.claim("node7")
        assert [w.worker_id for w in queue_a.workers()] == ["node7"]
        queue_b.claim("node7")
        assert [w.worker_id for w in queue_b.workers()] == ["node7"]
        assert queue_a.workers() == []         # the row moved campaigns

    def test_interrupt_releases_chunk_to_pending(self, tmp_path, monkeypatch):
        """Ctrl-C hands the held chunk straight back — no TTL wait."""
        from repro.campaigns.distributed import worker as worker_mod

        spec = fast_spec(seeds=(0,), sizes=(6,))
        queue = make_queue(tmp_path, spec, lease_ttl_s=10)
        queue.enqueue(spec.cell_list(), chunk_size=100)

        def interrupted(cell):
            raise KeyboardInterrupt

        monkeypatch.setattr(
            worker_mod.executor_module, "execute_cell", interrupted)
        with pytest.raises(KeyboardInterrupt):
            run_worker(queue.store, worker_id="w", lease_ttl_s=10,
                       poll_s=0.01, batch="off")
        counts = queue.counts()
        assert counts.pending == 1 and counts.leased == 0
        assert len(queue.store) == 0           # nothing recorded

    def test_worker_waits_for_first_enqueue(self, tmp_path):
        """Fleet bring-up: a worker started before any enqueue must wait
        for chunks, not exit 0 and strand the campaign."""
        import threading

        spec = fast_spec(seeds=(0,), sizes=(6,))
        queue = make_queue(tmp_path, spec, lease_ttl_s=10)
        assert not queue.finished()            # nothing enqueued != done
        assert not queue.ever_enqueued()
        messages = []
        result = {}

        def early_worker():
            result["report"] = run_worker(
                SqliteStore(queue.store.path, campaign=spec.name),
                worker_id="early", lease_ttl_s=10, poll_s=0.02,
                progress=messages.append)

        thread = threading.Thread(target=early_worker)
        thread.start()
        time.sleep(0.2)
        assert thread.is_alive()               # waiting, not exited
        queue.enqueue(spec.cell_list(), chunk_size=100)
        thread.join(timeout=30)
        assert not thread.is_alive()
        assert result["report"].cells_done == len(spec.cell_list())
        assert any("waiting" in m for m in messages)

    def test_error_after_success_never_enters_error_keys(self, tmp_path):
        """append_many with a warm error cache but cold completed cache
        must not list an already-succeeded cell as errored."""
        spec = fast_spec(seeds=(0,), sizes=(6,))
        cell = spec.cell_list()[0]
        store = SqliteStore(tmp_path / "e.db", campaign=spec.name)
        run_cells([cell], store, workers=1)
        # fresh instance: warm ONLY the error cache
        laggard = SqliteStore(tmp_path / "e.db", campaign=spec.name)
        assert laggard.error_keys() == set()
        laggard.append({"key": cell.key(), "config": cell.to_dict(),
                        "error": "late straggler"})
        assert laggard.error_keys() == set()   # success on disk wins
        assert SqliteStore(tmp_path / "e.db",
                           campaign=spec.name).error_keys() == set()

    def test_distributed_run_of_completed_campaign_spawns_nobody(
            self, tmp_path):
        spec = fast_spec(seeds=(0,))
        store = SqliteStore(tmp_path / "done.db", campaign=spec.name)
        run_cells(spec.cell_list(), store, workers=1)   # serial completion
        run = run_distributed(spec, store, workers=4, lease_ttl_s=10)
        assert run.workers == 0
        assert run.executed == 0
        assert run.skipped == len(spec.cell_list())

    def test_poison_chunk_parked_after_max_attempts(self, tmp_path):
        """A chunk that keeps killing its workers is parked, not re-stolen
        forever: the campaign still finishes and status shows the parking."""
        clock = FakeClock()
        spec = fast_spec(seeds=(0, 1), sizes=(6,))     # 2 cells -> 2 chunks
        queue = make_queue(tmp_path, spec, lease_ttl_s=10, clock=clock)
        queue.max_attempts = 2
        queue.enqueue(spec.cell_list(), chunk_size=1)
        poison = queue.claim("w1")                     # claimed, never done
        healthy = queue.claim("w2")
        from repro.campaigns.executor import execute_cell
        queue.complete(healthy.chunk_id, "w2",
                       [execute_cell(CellConfig.from_dict(d))
                        for d in healthy.cells])
        clock.advance(11)
        again = queue.claim("w3")                      # steal #1: attempt 2
        assert again.chunk_id == poison.chunk_id and again.attempt == 2
        clock.advance(11)
        assert queue.claim("w4") is None               # attempt cap: parked
        counts = queue.counts()
        assert counts.failed == 1 and counts.cells_failed == 1
        assert queue.finished()                        # parked is terminal
        status = fleet_status(queue.store, lease_ttl_s=10, clock=clock)
        assert "PARKED" in render_status(status, clock=clock)
        # a fresh enqueue gives the parked cells a new attempt cycle
        report = queue.enqueue(spec.cell_list(), chunk_size=1)
        assert report.enqueued_cells == 1
        assert not queue.finished()

    def test_report_falls_back_to_distributed_default_store(
            self, tmp_path, capsys, monkeypatch):
        """campaign report/resume with no --store find results/<spec>.db
        when the .jsonl default is absent (the --distributed round trip)."""
        from repro.cli import main

        monkeypatch.chdir(tmp_path)
        assert main(["campaign", "run", "--spec", "smoke", "--limit", "6",
                     "--distributed", "--workers", "1", "--lease-ttl", "10",
                     "--no-report"]) == 0
        capsys.readouterr()
        assert main(["campaign", "report", "--spec", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "results/smoke.db" in out and "runs=" in out
        assert main(["campaign", "resume", "--spec", "smoke", "--limit", "6",
                     "--no-report"]) == 0
        assert "skipped=6" in capsys.readouterr().out

    def test_enqueue_rejects_bad_chunk_size(self, tmp_path):
        spec = fast_spec(seeds=(0,), sizes=(6,))
        queue = make_queue(tmp_path, spec)
        for bad in (0, -1):
            with pytest.raises(ConfigurationError, match="chunk_size"):
                queue.enqueue(spec.cell_list(), chunk_size=bad)
        assert not queue.ever_enqueued()

    def test_pool_run_refuses_store_with_live_chunks(self, tmp_path):
        """run_cells must not write past the lease barrier while a fleet
        is draining the same campaign — that could record a cell twice."""
        spec = fast_spec()
        queue = make_queue(tmp_path, spec, lease_ttl_s=10)
        queue.enqueue(spec.cell_list(), chunk_size=2)
        with pytest.raises(ConfigurationError, match="pending or leased"):
            run_cells(spec.cell_list(), queue.store, workers=1)
        # once the fleet drains the queue, pool-mode runs are fine again
        run_worker(queue.store, worker_id="w", lease_ttl_s=10, poll_s=0.01)
        resumed = run_cells(spec.cell_list(), queue.store, workers=1)
        assert resumed.executed == 0
        assert resumed.skipped == len(spec.cell_list())

    def test_resume_accounting_does_not_double_count(self, tmp_path):
        """Cells drained from leftover chunks count as executed, not as
        skipped+executed."""
        spec = fast_spec()
        store = SqliteStore(tmp_path / "acct.db", campaign=spec.name)
        WorkQueue(store, lease_ttl_s=10).enqueue(
            spec.cell_list(), chunk_size=2)
        run = run_distributed(spec, store, workers=1, lease_ttl_s=10)
        assert run.total == len(spec.cell_list())
        assert run.executed == len(spec.cell_list())
        assert run.skipped == 0
        assert run.skipped + run.executed == run.total

    def test_enqueue_dedupes_within_the_batch(self, tmp_path):
        """Two input cells with the same content hash queue exactly once."""
        spec = fast_spec(seeds=(0,), sizes=(6,))
        cells = spec.cell_list()
        queue = make_queue(tmp_path, spec)
        report = queue.enqueue(cells + list(cells), chunk_size=100)
        assert report.enqueued_cells == len(cells)
        assert report.skipped_queued == len(cells)   # the duplicates
        assert len(queue.queued_cell_keys()) == len(cells)
        run_worker(queue.store, worker_id="w", lease_ttl_s=10, poll_s=0.01)
        assert duplicate_keys(queue.store) == []

    def test_run_distributed_raises_on_never_run_parked_cells(self, tmp_path):
        """A drained queue whose parked cells never ran must not look like
        success."""
        spec = fast_spec(seeds=(0,), sizes=(6,))
        store = SqliteStore(tmp_path / "p.db", campaign=spec.name)
        # a parked chunk whose cell has no outcome at all (the poison
        # shape: its workers died before recording anything, and it is
        # not part of the spec being re-enqueued)
        conn = store.connection()
        with conn:
            conn.execute(
                "INSERT INTO chunks (campaign_key, state, cells, cell_keys, "
                "n_cells, created_at, done_at) "
                "VALUES (?, 'failed', '[]', '[\"never-ran-key\"]', 1, 1, 1)",
                (spec.name,))
        with pytest.raises(ConfigurationError, match="never"):
            run_distributed(spec, store, workers=1, lease_ttl_s=10)
        # the healthy cells were still executed and persisted
        store.invalidate_caches()    # workers wrote from other processes
        assert store.completed_keys() == {c.key() for c in spec.cell_list()}

    def test_run_distributed_reenqueues_and_redrives_parked_cells(
            self, tmp_path):
        """Parked chunks whose cells CAN run again are re-queued by the
        next run's enqueue and complete cleanly (no false alarm)."""
        spec = fast_spec(seeds=(0, 1), sizes=(6,))
        store = SqliteStore(tmp_path / "p.db", campaign=spec.name)
        queue = WorkQueue(store, lease_ttl_s=10)
        queue.enqueue(spec.cell_list(), chunk_size=1)
        conn = store.connection()
        with conn:
            conn.execute(
                "UPDATE chunks SET state = 'failed', done_at = 1 "
                "WHERE id = (SELECT MIN(id) FROM chunks)")
        run = run_distributed(spec, store, workers=1, lease_ttl_s=10)
        assert run.executed == len(spec.cell_list())
        store.invalidate_caches()
        assert store.completed_keys() == {c.key() for c in spec.cell_list()}

    def test_status_notes_campaign_without_a_queue(self, tmp_path):
        """Watching a store that only ever saw pool-mode runs must say so
        instead of looking like a hung fleet."""
        spec = fast_spec(seeds=(0,), sizes=(6,))
        store = SqliteStore(tmp_path / "pool.db", campaign=spec.name)
        run_cells(spec.cell_list(), store, workers=1)
        status = fleet_status(store, lease_ttl_s=10)
        assert not status.ever_enqueued and not status.finished
        text = render_status(status)
        assert "no chunks have been enqueued" in text

    def test_debug_invariants_applied_at_enqueue_time(self, tmp_path):
        """The audit flag changes cell keys, so it is applied before the
        enqueue keys the cells; a second debug run is a clean resume and
        records land under the keys the queue deduped by."""
        from dataclasses import replace

        spec = fast_spec(seeds=(0,), sizes=(6,))
        store = SqliteStore(tmp_path / "dbg.db", campaign=spec.name)
        run = run_distributed(spec, store, workers=1, lease_ttl_s=10,
                              debug_invariants=True)
        assert run.executed == len(spec.cell_list())
        store.invalidate_caches()
        debug_keys = {replace(c, debug_invariants=True).key()
                      for c in spec.cell_list()}
        assert store.completed_keys() == debug_keys
        again = run_distributed(spec, store, workers=1, lease_ttl_s=10,
                                debug_invariants=True)
        assert again.executed == 0
        assert again.skipped == len(spec.cell_list())
        assert duplicate_keys(store) == []
