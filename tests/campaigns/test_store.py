"""JSONL result store: durability, resume keys, corruption tolerance."""

import json

from repro.campaigns.store import ResultStore


def rec(key, **extra):
    return {"key": key, "config": {"x": 1}, "metrics": {"rounds": 3}, **extra}


class TestResultStore:
    def test_append_and_read_back(self, tmp_path):
        store = ResultStore(tmp_path / "r.jsonl")
        store.append(rec("a"))
        store.append(rec("b"))
        assert [r["key"] for r in store.records()] == ["a", "b"]
        assert store.completed_keys() == {"a", "b"}

    def test_append_many_single_flush(self, tmp_path):
        store = ResultStore(tmp_path / "r.jsonl")
        store.append_many([rec("a"), rec("b"), rec("c")])
        assert len(store) == 3

    def test_missing_file_is_empty(self, tmp_path):
        store = ResultStore(tmp_path / "absent.jsonl")
        assert list(store.records()) == []
        assert store.completed_keys() == set()
        assert len(store) == 0

    def test_creates_parent_directories(self, tmp_path):
        store = ResultStore(tmp_path / "deep" / "er" / "r.jsonl")
        store.append(rec("a"))
        assert store.path.exists()

    def test_error_records_are_not_completed(self, tmp_path):
        store = ResultStore(tmp_path / "r.jsonl")
        store.append(rec("ok"))
        store.append({"key": "bad", "config": {}, "error": "boom"})
        assert store.completed_keys() == {"ok"}
        assert "ok" in store and "bad" not in store
        assert len(store) == 2  # the failure is still on record

    def test_truncated_final_line_is_skipped(self, tmp_path):
        path = tmp_path / "r.jsonl"
        store = ResultStore(path)
        store.append(rec("a"))
        with path.open("a") as fh:
            fh.write(json.dumps(rec("half"))[:20])  # killed mid-write
        fresh = ResultStore(path)
        assert fresh.completed_keys() == {"a"}

    def test_completed_cache_tracks_appends(self, tmp_path):
        store = ResultStore(tmp_path / "r.jsonl")
        assert store.completed_keys() == set()
        store.append(rec("a"))
        assert store.completed_keys() == {"a"}
        store.append_many([rec("b"), {"key": "err", "error": "x"}])
        assert store.completed_keys() == {"a", "b"}

    def test_two_stores_share_the_file(self, tmp_path):
        path = tmp_path / "r.jsonl"
        ResultStore(path).append(rec("a"))
        assert ResultStore(path).completed_keys() == {"a"}
