"""campaigns test package."""
