"""Executor: serial/parallel equivalence, resume, failures, aggregation."""

import pytest

from repro.api import run_cell, run_exploration
from repro.adversary import RandomMissingEdge
from repro.algorithms.fsync import UnconsciousExploration
from repro.campaigns import (
    CampaignSpec,
    CellConfig,
    JsonlStore as ResultStore,
    aggregate_records,
    execute_cell,
    run_cells,
)
from repro.campaigns import executor as executor_mod
from repro.core.errors import ConfigurationError


def small_spec(seeds=(0, 1, 2)) -> CampaignSpec:
    return CampaignSpec(
        name="exec-test",
        base={"algorithm": "unconscious", "horizon": "100 * n",
              "stop_on_exploration": True, "placement": "offset-spread"},
        grid={"ring_size": [6, 8], "seed": list(seeds)},
    )


def metrics_by_key(records):
    return {r["key"]: r["metrics"] for r in records}


class TestExecuteCell:
    def test_matches_direct_api_run(self):
        cell = CellConfig(
            algorithm="unconscious", ring_size=8, max_rounds=800,
            placement="offset-spread", stop_on_exploration=True, seed=3,
        )
        record = execute_cell(cell)
        direct = run_exploration(
            UnconsciousExploration(), ring_size=8, positions=[1, 5],
            max_rounds=800, adversary=RandomMissingEdge(seed=3),
            stop_on_exploration=True,
        )
        assert record["metrics"]["rounds"] == direct.rounds
        assert record["metrics"]["total_moves"] == direct.total_moves
        assert record["metrics"]["exploration_round"] == direct.exploration_round

    def test_run_cell_facade_matches_executor(self):
        cell = CellConfig(algorithm="known-bound", ring_size=8, max_rounds=100)
        result = run_cell(cell)
        record = execute_cell(cell)
        assert record["metrics"]["rounds"] == result.rounds
        assert record["metrics"]["mode"] == result.termination_mode().value

    def test_failure_becomes_error_record(self):
        cell = CellConfig(
            algorithm="unconscious", ring_size=8, max_rounds=10,
            placement="explicit", positions=None,  # invalid: no positions
        )
        record = execute_cell(cell)
        assert "error" in record and "metrics" not in record
        assert record["key"] == cell.key()


class TestRunCells:
    def test_serial_executes_everything(self, tmp_path):
        store = ResultStore(tmp_path / "r.jsonl")
        run = run_cells(small_spec().cells(), store, workers=1)
        assert (run.total, run.skipped, run.executed, run.failed) == (6, 0, 6, 0)
        assert store.completed_keys() == {c.key() for c in small_spec().cells()}

    def test_parallel_equals_serial(self, tmp_path):
        serial = ResultStore(tmp_path / "serial.jsonl")
        parallel = ResultStore(tmp_path / "parallel.jsonl")
        run_s = run_cells(small_spec().cells(), serial, workers=1)
        run_p = run_cells(small_spec().cells(), parallel, workers=3,
                          chunk_size=1)
        assert run_p.workers > 1
        assert metrics_by_key(run_s.records) == metrics_by_key(run_p.records)

    def test_resume_skips_completed_cells(self, tmp_path):
        store = ResultStore(tmp_path / "r.jsonl")
        cells = small_spec().cell_list()
        first = run_cells(cells[:4], store, workers=1)
        assert first.executed == 4
        resumed = run_cells(cells, store, workers=1)
        assert resumed.skipped == 4
        assert resumed.executed == 2
        assert store.completed_keys() == {c.key() for c in cells}

    def test_interrupted_store_resumes_without_recompute(self, tmp_path, monkeypatch):
        """Simulate a kill mid-campaign: completed lines + one torn line."""
        store = ResultStore(tmp_path / "r.jsonl")
        cells = small_spec().cell_list()
        run_cells(cells[:3], store, workers=1)
        with store.path.open("a") as fh:
            fh.write('{"key": "torn-re')  # process died mid-write
        executed = []
        original = executor_mod.execute_cell

        def counting(cell):
            executed.append(cell.key())
            return original(cell)

        monkeypatch.setattr(executor_mod, "execute_cell", counting)
        # batch="off" pins the scalar path so the counting hook sees
        # every executed cell (the batch path never calls execute_cell).
        resumed = run_cells(cells, ResultStore(store.path), workers=1,
                            batch="off")
        assert resumed.skipped == 3
        assert set(executed) == {c.key() for c in cells[3:]}

    def test_progress_callback_sees_every_cell(self, tmp_path):
        seen = []
        run_cells(
            small_spec().cells(), ResultStore(tmp_path / "r.jsonl"),
            workers=1, progress=lambda done, total: seen.append((done, total)),
        )
        assert seen[-1] == (6, 6)

    def test_rejects_unknown_names_before_running(self, tmp_path):
        bad = CellConfig(algorithm="unconscious", ring_size=6, max_rounds=10,
                         adversary="martian")
        with pytest.raises(ConfigurationError, match="unknown adversary"):
            run_cells([bad], ResultStore(tmp_path / "r.jsonl"))

    def test_failed_cells_recorded_and_skipped_until_retry(self, tmp_path):
        store = ResultStore(tmp_path / "r.jsonl")
        bad = CellConfig(algorithm="unconscious", ring_size=8, max_rounds=10,
                         placement="explicit", positions=None)
        run = run_cells([bad], store, workers=1)
        assert run.failed == 1
        assert store.error_keys() == {bad.key()}
        # failures count as *attempted*: a plain resume skips them...
        rerun = run_cells([bad], store, workers=1)
        assert rerun.skipped == 1 and rerun.executed == 0
        # ...and retry_failed re-drives them explicitly
        redriven = run_cells([bad], store, workers=1, retry_failed=True)
        assert redriven.skipped == 0 and redriven.executed == 1

    def test_retry_failed_clears_error_listing_on_success(self, tmp_path):
        store = ResultStore(tmp_path / "r.jsonl")
        cell = small_spec(seeds=(0,)).cell_list()[0]
        # Forge an error record for a cell that will succeed when re-driven
        # (the transient-failure shape a fleet sees).
        store.append({"key": cell.key(), "config": cell.to_dict(),
                      "error": "RuntimeError: transient"})
        assert store.error_keys() == {cell.key()}
        assert run_cells([cell], store, workers=1).executed == 0
        run = run_cells([cell], store, workers=1, retry_failed=True)
        assert run.executed == 1 and run.failed == 0
        # the error listing empties once a success exists
        assert store.error_keys() == set()
        fresh = ResultStore(store.path)
        assert fresh.error_keys() == set()
        assert store.query().errors() == []


class TestAggregation:
    def test_rows_group_by_ring_size(self, tmp_path):
        store = ResultStore(tmp_path / "r.jsonl")
        run_cells(small_spec().cells(), store, workers=1)
        rows = aggregate_records(store.records(), by=("ring_size",))
        assert [dict(r.group)["ring_size"] for r in rows] == [6, 8]
        for row in rows:
            assert row.stats.runs == 3
            assert row.stats.all_explored
            assert row.stats.modes == {"unconscious": 3}

    def test_error_records_excluded(self):
        rows = aggregate_records([{"key": "x", "config": {}, "error": "boom"}])
        assert rows == []

    def test_unknown_dimension_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown group-by"):
            aggregate_records([], by=("bogus",))

    def test_list_valued_dimension_is_groupable(self, tmp_path):
        store = ResultStore(tmp_path / "r.jsonl")
        run_cells(small_spec(seeds=(0,)).cells(), store, workers=1)
        rows = aggregate_records(store.records(), by=("flipped", "ring_size"))
        assert [dict(r.group)["flipped"] for r in rows] == [(), ()]

    def test_rows_sorted_numerically(self):
        records = [
            {"key": str(n), "config": {"ring_size": n},
             "metrics": {"rounds": 1, "explored": True, "exploration_round": 1,
                         "total_moves": 1, "last_termination_round": None,
                         "all_terminated": False, "mode": "unconscious"}}
            for n in (128, 8, 32, 16)
        ]
        rows = aggregate_records(records, by=("ring_size",))
        assert [dict(r.group)["ring_size"] for r in rows] == [8, 16, 32, 128]

    def test_sweep_point_and_campaign_agree(self, tmp_path):
        """The refactored analysis sweep and a campaign report the same stats."""
        from repro.analysis.runner import average_case
        from repro.api import build_engine
        from repro.schedulers import FsyncScheduler

        def factory(n, seed):
            return build_engine(
                UnconsciousExploration(), ring_size=n, positions=[1, 1 + n // 2],
                adversary=RandomMissingEdge(seed=seed), scheduler=FsyncScheduler(),
            )

        point = average_case(factory, 8, seeds=range(3), max_rounds=800,
                             stop_on_exploration=True)
        store = ResultStore(tmp_path / "r.jsonl")
        run_cells(small_spec(seeds=range(3)).cells(), store, workers=1)
        rows = aggregate_records(store.records(), by=("ring_size",))
        row = next(r for r in rows if dict(r.group)["ring_size"] == 8)
        assert row.stats.mean_rounds == point.mean_rounds
        assert row.stats.mean_moves == point.mean_moves
        assert row.stats.mean_exploration_round == point.mean_exploration_round
