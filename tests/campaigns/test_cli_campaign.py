"""The ``python -m repro campaign`` command family."""

import json

import pytest

from repro.campaigns.presets import get_spec
from repro.cli import main


@pytest.fixture
def in_tmp(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    return tmp_path


class TestCampaignCli:
    def test_list_names_every_preset(self, capsys):
        assert main(["campaign", "list"]) == 0
        out = capsys.readouterr().out
        for name in ("smoke", "table2-fsync", "table4-ssync", "paper-tables"):
            assert name in out

    def test_run_writes_default_store_and_reports(self, in_tmp, capsys):
        code = main(["campaign", "run", "--spec", "smoke", "--workers", "1",
                     "--limit", "6"])
        out = capsys.readouterr().out
        assert code == 0
        assert (in_tmp / "results" / "smoke.jsonl").exists()
        assert "executed=6" in out
        assert "label=" in out  # the aggregate table

    def test_run_twice_resumes_from_store(self, in_tmp, capsys):
        main(["campaign", "run", "--spec", "smoke", "--workers", "1",
              "--limit", "6", "--no-report"])
        capsys.readouterr()
        code = main(["campaign", "resume", "--spec", "smoke", "--workers", "1",
                     "--limit", "6", "--no-report"])
        out = capsys.readouterr().out
        assert code == 0
        assert "skipped=6" in out and "executed=0" in out

    def test_resume_without_store_fails(self, in_tmp, capsys):
        assert main(["campaign", "resume", "--spec", "smoke"]) == 1
        assert "nothing to resume" in capsys.readouterr().err

    def test_report_without_store_fails(self, in_tmp, capsys):
        assert main(["campaign", "report", "--spec", "smoke"]) == 1

    def test_report_groups_rows(self, in_tmp, capsys):
        main(["campaign", "run", "--spec", "smoke", "--workers", "1",
              "--limit", "6", "--no-report"])
        capsys.readouterr()
        code = main(["campaign", "report", "--spec", "smoke",
                     "--by", "ring_size"])
        out = capsys.readouterr().out
        assert code == 0
        assert "ring_size=6" in out

    def test_run_spec_file(self, in_tmp, capsys):
        spec = get_spec("smoke").restricted(4)
        spec_path = in_tmp / "custom.json"
        spec_path.write_text(json.dumps(spec.to_dict()))
        store = in_tmp / "custom.jsonl"
        code = main(["campaign", "run", "--spec-file", str(spec_path),
                     "--store", str(store), "--workers", "1", "--no-report"])
        out = capsys.readouterr().out
        assert code == 0
        assert "executed=4" in out
        assert store.exists()

    def test_parallel_run_on_the_cli(self, in_tmp, capsys):
        code = main(["campaign", "run", "--spec", "smoke", "--workers", "2",
                     "--chunk-size", "2", "--no-report"])
        out = capsys.readouterr().out
        assert code == 0
        assert "workers=2" in out and "executed=24" in out


class TestStoreBackendCli:
    def _run(self, in_tmp, store, extra=()):
        return main(["campaign", "run", "--spec", "smoke", "--workers", "1",
                     "--limit", "6", "--store", store, "--no-report", *extra])

    def test_sqlite_uri_runs_and_resumes(self, in_tmp, capsys):
        store = f"sqlite:{in_tmp / 'smoke.db'}"
        assert self._run(in_tmp, store) == 0
        assert (in_tmp / "smoke.db").exists()
        capsys.readouterr()
        code = main(["campaign", "resume", "--spec", "smoke", "--workers", "1",
                     "--limit", "6", "--store", store, "--no-report"])
        out = capsys.readouterr().out
        assert code == 0
        assert "skipped=6" in out and "executed=0" in out

    def test_bare_db_path_selects_sqlite(self, in_tmp, capsys):
        assert self._run(in_tmp, str(in_tmp / "smoke.db")) == 0
        import sqlite3

        with sqlite3.connect(in_tmp / "smoke.db") as conn:
            (count,) = conn.execute("SELECT COUNT(*) FROM results").fetchone()
        assert count == 6

    def test_unknown_scheme_is_a_clean_error(self, in_tmp, capsys):
        assert self._run(in_tmp, "mongo:whatever") == 2
        assert "unknown store scheme" in capsys.readouterr().err

    def test_reports_identical_across_backends(self, in_tmp, capsys):
        jsonl = str(in_tmp / "smoke.jsonl")
        sqlite = f"sqlite:{in_tmp / 'smoke.db'}"
        self._run(in_tmp, jsonl)
        self._run(in_tmp, sqlite)
        capsys.readouterr()
        outputs = []
        for store in (jsonl, sqlite):
            assert main(["campaign", "report", "--spec", "smoke",
                         "--store", store, "--fit"]) == 0
            out = capsys.readouterr().out
            # drop the title line naming the store file
            outputs.append("\n".join(out.splitlines()[1:]))
        assert outputs[0] == outputs[1]

    def test_report_fit_prints_verdicts(self, in_tmp, capsys):
        """A spec with >= 3 ring sizes gets real shape verdicts."""
        spec = get_spec("table2-fsync")
        spec.grid["seed"] = [0]
        for variant in spec.variants:
            variant["grid"]["ring_size"] = variant["grid"]["ring_size"][:3]
        spec_path = in_tmp / "t2.json"
        spec_path.write_text(json.dumps(spec.to_dict()))
        store = f"sqlite:{in_tmp / 't2.db'}"
        assert main(["campaign", "run", "--spec-file", str(spec_path),
                     "--store", store, "--workers", "1", "--no-report"]) == 0
        capsys.readouterr()
        assert main(["campaign", "report", "--spec-file", str(spec_path),
                     "--store", store, "--fit"]) == 0
        out = capsys.readouterr().out
        assert "complexity-shape fits" in out
        assert "(R^2:" in out

    def test_export_csv(self, in_tmp, capsys):
        store = f"sqlite:{in_tmp / 'smoke.db'}"
        self._run(in_tmp, store)
        capsys.readouterr()
        out_path = in_tmp / "smoke.csv"
        assert main(["campaign", "export", "--spec", "smoke",
                     "--store", store, "--out", str(out_path)]) == 0
        assert "exported 6 rows" in capsys.readouterr().out
        header = out_path.read_text().splitlines()[0]
        assert header.startswith("key,elapsed_s,error,config_algorithm")

    def test_export_without_store_fails(self, in_tmp, capsys):
        assert main(["campaign", "export", "--spec", "smoke",
                     "--out", str(in_tmp / "x.csv")]) == 1
        assert "no result store" in capsys.readouterr().err


class TestReportReduceAndScatter:
    """The --reduce switch and per-seed scatter rows on campaign report."""

    def _seeded_store(self, in_tmp):
        spec = get_spec("smoke")
        spec.grid["seed"] = [0, 1, 2]
        spec.variants = spec.variants[:1]
        spec_path = in_tmp / "r.json"
        spec_path.write_text(json.dumps(spec.to_dict()))
        store = f"sqlite:{in_tmp / 'r.db'}"
        assert main(["campaign", "run", "--spec-file", str(spec_path),
                     "--store", store, "--workers", "1", "--no-report"]) == 0
        return spec_path, store

    def test_reduce_switch_changes_the_fit_series(self, in_tmp, capsys):
        spec_path, store = self._seeded_store(in_tmp)
        capsys.readouterr()
        assert main(["campaign", "report", "--spec-file", str(spec_path),
                     "--store", store, "--fit", "--reduce", "p90"]) == 0
        out = capsys.readouterr().out
        assert "p90 per size" in out

    def test_scatter_prints_per_seed_rows(self, in_tmp, capsys):
        spec_path, store = self._seeded_store(in_tmp)
        capsys.readouterr()
        assert main(["campaign", "report", "--spec-file", str(spec_path),
                     "--store", store, "--scatter"]) == 0
        out = capsys.readouterr().out
        assert "per-seed scatter" in out
        for seed in (0, 1, 2):
            assert f"seed={seed}" in out
        assert "rounds=" in out and "total_moves=" in out
