"""The ``python -m repro campaign`` command family."""

import json

import pytest

from repro.campaigns.presets import get_spec
from repro.cli import main


@pytest.fixture
def in_tmp(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    return tmp_path


class TestCampaignCli:
    def test_list_names_every_preset(self, capsys):
        assert main(["campaign", "list"]) == 0
        out = capsys.readouterr().out
        for name in ("smoke", "table2-fsync", "table4-ssync", "paper-tables"):
            assert name in out

    def test_run_writes_default_store_and_reports(self, in_tmp, capsys):
        code = main(["campaign", "run", "--spec", "smoke", "--workers", "1",
                     "--limit", "6"])
        out = capsys.readouterr().out
        assert code == 0
        assert (in_tmp / "results" / "smoke.jsonl").exists()
        assert "executed=6" in out
        assert "label=" in out  # the aggregate table

    def test_run_twice_resumes_from_store(self, in_tmp, capsys):
        main(["campaign", "run", "--spec", "smoke", "--workers", "1",
              "--limit", "6", "--no-report"])
        capsys.readouterr()
        code = main(["campaign", "resume", "--spec", "smoke", "--workers", "1",
                     "--limit", "6", "--no-report"])
        out = capsys.readouterr().out
        assert code == 0
        assert "skipped=6" in out and "executed=0" in out

    def test_resume_without_store_fails(self, in_tmp, capsys):
        assert main(["campaign", "resume", "--spec", "smoke"]) == 1
        assert "nothing to resume" in capsys.readouterr().err

    def test_report_without_store_fails(self, in_tmp, capsys):
        assert main(["campaign", "report", "--spec", "smoke"]) == 1

    def test_report_groups_rows(self, in_tmp, capsys):
        main(["campaign", "run", "--spec", "smoke", "--workers", "1",
              "--limit", "6", "--no-report"])
        capsys.readouterr()
        code = main(["campaign", "report", "--spec", "smoke",
                     "--by", "ring_size"])
        out = capsys.readouterr().out
        assert code == 0
        assert "ring_size=6" in out

    def test_run_spec_file(self, in_tmp, capsys):
        spec = get_spec("smoke").restricted(4)
        spec_path = in_tmp / "custom.json"
        spec_path.write_text(json.dumps(spec.to_dict()))
        store = in_tmp / "custom.jsonl"
        code = main(["campaign", "run", "--spec-file", str(spec_path),
                     "--store", str(store), "--workers", "1", "--no-report"])
        out = capsys.readouterr().out
        assert code == 0
        assert "executed=4" in out
        assert store.exists()

    def test_parallel_run_on_the_cli(self, in_tmp, capsys):
        code = main(["campaign", "run", "--spec", "smoke", "--workers", "2",
                     "--chunk-size", "2", "--no-report"])
        out = capsys.readouterr().out
        assert code == 0
        assert "workers=2" in out and "executed=24" in out
