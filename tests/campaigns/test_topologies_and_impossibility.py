"""Topology sweeps and the impossibility preset, cell by cell."""

import pytest

from repro.campaigns import (
    CellConfig,
    build_cell_engine,
    build_graph_cell_engine,
    execute_cell,
    get_spec,
    is_graph_cell,
    validate_cell,
)
from repro.core.errors import ConfigurationError

networkx = pytest.importorskip("networkx")


def graph_cell(**overrides) -> CellConfig:
    fields = dict(algorithm="random-walk", ring_size=9, max_rounds=4_000,
                  adversary="random", stop_on_exploration=True)
    fields.update(overrides)
    return CellConfig(**fields)


class TestTopologyRegistry:
    def test_graph_builders_have_requested_node_count(self):
        from repro.campaigns.registry import TOPOLOGIES

        for topology in ("ring", "path", "torus", "cactus"):
            cell = graph_cell(topology=topology, ring_size=9)
            graph = TOPOLOGIES[topology](cell)
            assert graph.number_of_nodes() == 9, topology
            assert networkx.is_connected(graph)

    def test_cactus_even_count_gets_pendant_tail(self):
        from repro.extensions.dynamic_graph import cactus_graph

        graph = cactus_graph(8)
        assert graph.number_of_nodes() == 8
        assert networkx.is_connected(graph)
        assert min(dict(graph.degree).values()) == 1  # the tail

    def test_torus_needs_a_grid_factorisation(self):
        cell = graph_cell(topology="torus", ring_size=7)  # prime
        with pytest.raises(ConfigurationError, match="torus"):
            build_graph_cell_engine(cell)

    def test_unknown_topology_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown topology"):
            validate_cell(graph_cell(topology="klein-bottle"))

    def test_ring_algorithms_refuse_graph_topologies(self):
        cell = CellConfig(algorithm="known-bound", ring_size=9, max_rounds=10,
                          topology="torus")
        with pytest.raises(ConfigurationError, match="ring-specific"):
            validate_cell(cell)

    def test_graph_cells_refuse_ring_only_adversaries(self):
        with pytest.raises(ConfigurationError, match="cannot drive"):
            validate_cell(graph_cell(topology="path", adversary="figure2"))

    def test_engine_dispatch(self):
        from repro.extensions import DynamicGraphEngine

        assert is_graph_cell(graph_cell())
        assert not is_graph_cell(
            CellConfig(algorithm="known-bound", ring_size=8, max_rounds=10))
        # One entry point for every topology: build_cell_engine dispatches
        # explorer cells to the graph facade of the unified core.
        engine = build_cell_engine(graph_cell())
        assert isinstance(engine, DynamicGraphEngine)
        with pytest.raises(ConfigurationError, match="ring engine"):
            build_graph_cell_engine(
                CellConfig(algorithm="known-bound", ring_size=8, max_rounds=10))

    def test_peeking_adversary_requires_deterministic_explorer(self):
        """Peeks advance a random walk's RNG, so results would depend on
        how often the adversary looks ahead — rejected at validation."""
        with pytest.raises(ConfigurationError, match="deterministic"):
            validate_cell(graph_cell(topology="torus", adversary="block-agent"))
        # the deterministic rotors remain allowed
        validate_cell(graph_cell(algorithm="rotor-router", topology="torus",
                                 adversary="block-agent"))

    def test_graph_cells_accept_ssync_schedulers(self):
        cell = graph_cell(scheduler="round-robin", topology="torus")
        validate_cell(cell)  # must not raise
        engine = build_cell_engine(cell)
        engine.step()
        assert len(engine.last_active) == 1  # round-robin window of one


class TestTopologyExecution:
    @pytest.mark.parametrize("topology", ["ring", "path", "torus", "cactus"])
    def test_random_walk_explores_every_topology(self, topology):
        record = execute_cell(graph_cell(topology=topology))
        assert "error" not in record, record.get("error")
        metrics = record["metrics"]
        assert metrics["explored"]
        assert metrics["mode"] == "unconscious"
        assert metrics["total_moves"] > 0
        assert record["config"]["topology"] == topology

    def test_rotor_router_runs_on_graph_engine(self):
        record = execute_cell(graph_cell(algorithm="rotor-router",
                                         topology="path", adversary="none"))
        assert "error" not in record, record.get("error")
        assert record["metrics"]["explored"]

    def test_topology_is_a_sweep_dimension(self):
        spec = get_spec("topologies")
        cells = spec.cell_list()
        assert {c.topology for c in cells} == {"ring", "path", "torus", "cactus"}
        # content hashes separate topologies that share every other field
        by_everything_else = {}
        for cell in cells:
            key = (cell.ring_size, cell.seed)
            by_everything_else.setdefault(key, set()).add(cell.key())
        assert all(len(keys) == 4 for keys in by_everything_else.values())

    def test_graph_results_are_seed_deterministic(self):
        cell = graph_cell(topology="cactus", seed=3)
        first = execute_cell(cell)
        second = execute_cell(cell)
        assert first["metrics"] == second["metrics"]

    def test_torus_ssync_peeking_adversary_partial_termination(self):
        """The widened matrix end to end: a non-ring topology under an
        SSYNC scheduler, a peeking (look-ahead) adversary and a
        termination mode, through the same executor path ring cells take.
        The adversary pins its target forever (Observation 1 generalises),
        so the free agent completes its census and terminates while the
        target cannot — the paper's *partial* termination, classified
        from the same RunResult schema ring cells produce."""
        cell = CellConfig(
            algorithm="rotor-router-terminating", ring_size=12, agents=2,
            max_rounds=20_000, topology="torus", adversary="block-agent",
            scheduler="round-robin", transport="ns",
        )
        record = execute_cell(cell)
        assert "error" not in record, record.get("error")
        metrics = record["metrics"]
        assert metrics["explored"]
        assert metrics["terminated_count"] == 1
        assert not metrics["all_terminated"]
        assert metrics["mode"] == "partial"
        assert metrics["last_termination_round"] >= metrics["exploration_round"]

    def test_torus_ssync_explicit_termination(self):
        """With a connectivity-preserving (non-pinning) adversary every
        terminating explorer finishes its census: explicit termination."""
        cell = CellConfig(
            algorithm="rotor-router-terminating", ring_size=9, agents=2,
            max_rounds=40_000, topology="torus", adversary="random",
            scheduler="random-fair", transport="ns",
        )
        record = execute_cell(cell)
        assert "error" not in record, record.get("error")
        metrics = record["metrics"]
        assert metrics["explored"]
        assert metrics["all_terminated"]
        assert metrics["mode"] == "explicit"
        assert metrics["halted_reason"] == "all-terminated"

    def test_block_agent_pins_its_target_on_a_torus(self):
        """Observation 1's peeking adversary, off the ring: the blocked
        rotor-router never leaves its start node while free agents roam."""
        cell = CellConfig(
            algorithm="rotor-router", ring_size=9, agents=2, max_rounds=400,
            topology="torus", adversary="block-agent",
        )
        engine = build_cell_engine(cell)
        start = engine.agents[0].node
        for _ in range(400):
            engine.step()
        assert engine.agents[0].node == start
        assert engine.agents[0].memory.Tsteps == 0
        assert engine.agents[1].memory.Tsteps > 0


class TestImpossibilityPreset:
    @pytest.fixture(scope="class")
    def records(self):
        """One (cheap) cell per variant, executed once for the class."""
        spec = get_spec("impossibility")
        picked = {}
        for cell in spec.cell_list():
            if cell.label not in picked:
                picked[cell.label] = cell
        return {label: (cell, execute_cell(cell))
                for label, cell in picked.items()
                if cell.label != "t3.4-theorem19-et-bound-only"}

    def test_every_variant_executes_cleanly(self, records):
        for label, (_, record) in records.items():
            assert "error" not in record, (label, record.get("error"))

    def test_theorem9_starves_every_move(self, records):
        _, record = records["t3.1-theorem9-ns-starvation"]
        metrics = record["metrics"]
        assert metrics["total_moves"] == 0
        assert not metrics["explored"]

    def test_theorem10_strands_the_agents(self, records):
        _, record = records["t3.2-theorem10-pt-no-chirality"]
        metrics = record["metrics"]
        assert not metrics["explored"]
        assert metrics["mode"] == "none"

    def test_figure2_costs_exactly_3n_minus_6(self, records):
        cell, record = records["fig2-worst-case-3n-6"]
        assert record["metrics"]["exploration_round"] == 3 * cell.ring_size - 6
        assert record["metrics"]["mode"] == "explicit"

    def test_zigzag_extracts_superlinear_moves(self, records):
        cell, record = records["t13-zigzag-quadratic-moves"]
        metrics = record["metrics"]
        assert metrics["explored"]
        # the forcing is Omega(n^2); even the smallest cell clears the
        # linear envelope 2n that a benign PT run stays inside
        assert metrics["total_moves"] > 3 * cell.ring_size

    def test_theorem19_terminates_incorrectly(self):
        spec = get_spec("impossibility")
        cell = next(c for c in spec.cells()
                    if c.label == "t3.4-theorem19-et-bound-only")
        record = execute_cell(cell)
        assert "error" not in record, record.get("error")
        assert record["metrics"]["mode"] == "incorrect"

    def test_combined_adversary_is_also_the_scheduler(self):
        cell = CellConfig(algorithm="pt-bound", ring_size=8, max_rounds=10,
                          adversary="ns-starvation", transport="ns")
        engine = build_cell_engine(cell)
        assert engine.scheduler is engine.adversary

    def test_theorem19_requires_a_bound(self):
        cell = CellConfig(algorithm="et-exact", ring_size=11, max_rounds=10,
                          agents=3, adversary="theorem19", transport="et")
        with pytest.raises(ConfigurationError, match="bound"):
            build_cell_engine(cell)


class TestMeetingPreventionOffTheRing:
    """The Observation-2 port: topology-generic prediction, legality at the
    connectivity wrapper, and the degree-2 boundary on the path."""

    def _colocation_rounds(self, topology: str, rounds: int = 300) -> int:
        cell = CellConfig(
            algorithm="rotor-router", ring_size=8, agents=2, max_rounds=rounds,
            adversary="prevent-meetings", topology=topology,
        )
        engine = build_cell_engine(cell)
        count = 0
        for _ in range(rounds):
            if not engine.step():
                break
            a, b = engine.agents
            if a.node == b.node:
                count += 1
        return count

    def test_meetings_prevented_on_the_ring(self):
        """On the ring every single removal is legal: zero co-locations."""
        assert self._colocation_rounds("ring") == 0

    def test_meetings_forced_on_the_path(self):
        """Every path edge is a bridge, so the wrapper suppresses every
        removal and the rotor-routers must eventually share a node."""
        assert self._colocation_rounds("path") > 0

    def test_ring_engine_still_prevents_meetings(self):
        """The generic rewrite keeps the original ring construction: the
        KnownUpperBound pair under prevent-meetings never co-locates."""
        cell = CellConfig(algorithm="known-bound", ring_size=10, agents=2,
                          max_rounds=120, adversary="prevent-meetings",
                          transport="ns")
        engine = build_cell_engine(cell)
        for _ in range(120):
            if not engine.step():
                break
            a, b = engine.agents
            assert a.node != b.node

    def test_peeking_port_requires_deterministic_explorer(self):
        for adversary in ("prevent-meetings", "ns-starvation"):
            cell = graph_cell(topology="path", adversary=adversary, agents=2)
            with pytest.raises(ConfigurationError, match="deterministic"):
                validate_cell(cell)

    def test_combined_adversary_schedules_graph_cells_too(self):
        cell = CellConfig(algorithm="rotor-router", ring_size=8, agents=2,
                          max_rounds=10, adversary="ns-starvation",
                          topology="path", transport="ns")
        engine = build_cell_engine(cell)
        assert engine.scheduler is engine.adversary  # the safe wrapper


class TestImpossibilityPathPreset:
    @pytest.fixture(scope="class")
    def records(self):
        """The smallest (ring, path) cell pair per variant."""
        spec = get_spec("impossibility-path")
        picked = {}
        for cell in spec.cell_list():
            picked.setdefault((cell.label, cell.topology), cell)
        return {key: execute_cell(cell) for key, cell in picked.items()}

    def test_preset_expands_the_full_contrast_grid(self):
        spec = get_spec("impossibility-path")
        cells = spec.cell_list()
        assert len(cells) == 24
        assert {c.topology for c in cells} == {"ring", "path"}

    def test_every_cell_executes_cleanly(self, records):
        for key, record in records.items():
            assert "error" not in record, (key, record.get("error"))

    @pytest.mark.parametrize("label", ["ip-obs1-block-agent",
                                       "ip-t9-ns-starvation"])
    def test_starvation_holds_on_the_ring(self, records, label):
        metrics = records[(label, "ring")]["metrics"]
        assert metrics["total_moves"] == 0
        assert not metrics["explored"]

    @pytest.mark.parametrize("label", ["ip-obs1-block-agent",
                                       "ip-obs2-prevent-meetings",
                                       "ip-t9-ns-starvation",
                                       "ip-control-random"])
    def test_every_path_cell_explores(self, records, label):
        metrics = records[(label, "path")]["metrics"]
        assert metrics["explored"], (label, metrics)
