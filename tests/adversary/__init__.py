"""adversary test package."""
