"""Worst-case schedules: Figure 2 and the zig-zag forcing of Th. 13/15."""

import pytest

from repro.adversary import Figure2Schedule, ZigZagForcingAdversary
from repro.algorithms.fsync import KnownUpperBound
from repro.algorithms.ssync import PTBoundWithChirality, PTLandmarkWithChirality
from repro.api import build_engine, run_exploration
from repro.core import TransportModel
from repro.core.errors import ConfigurationError
from repro.theory.bounds import fsync_known_bound_time


class TestFigure2:
    @pytest.mark.parametrize("n", [5, 7, 10, 16, 23])
    def test_exact_cost_for_any_size(self, n):
        cfg = Figure2Schedule(anchor=0).configuration(n)
        result = run_exploration(
            KnownUpperBound(bound=n), ring_size=n,
            max_rounds=fsync_known_bound_time(n) + 5, **cfg,
        )
        assert result.exploration_round == 3 * n - 6

    @pytest.mark.parametrize("anchor", [0, 3, 7])
    def test_anchor_position_is_irrelevant(self, anchor):
        n = 9
        cfg = Figure2Schedule(anchor=anchor).configuration(n)
        result = run_exploration(
            KnownUpperBound(bound=n), ring_size=n,
            max_rounds=fsync_known_bound_time(n) + 5, **cfg,
        )
        assert result.exploration_round == 3 * n - 6

    def test_rejects_small_rings(self):
        with pytest.raises(ConfigurationError):
            Figure2Schedule().configuration(4)

    def test_cost_exceeds_generic_lower_bound(self):
        """3n-6 >= 2n-3 (Observation 3) for n >= 3."""
        for n in range(3, 30):
            assert 3 * n - 6 >= 2 * n - 3 or n < 3


def zigzag_moves(algorithm_factory, n, landmark=None):
    adversary = ZigZagForcingAdversary(cap=max(1, n // 3))
    cfg = adversary.configuration(n)
    engine = build_engine(
        algorithm_factory(n),
        ring_size=n,
        positions=cfg["positions"],
        landmark=landmark,
        adversary=adversary,
        scheduler=adversary,
        transport=TransportModel.PT,
    )
    result = engine.run(
        300 * n * n, stop_when=lambda e: e.agents[1].terminated
    )
    return result


class TestZigZagForcing:
    def test_walker_is_forced_but_eventually_terminates(self):
        result = zigzag_moves(lambda n: PTBoundWithChirality(bound=n), 12)
        assert result.explored
        assert result.agents[1].terminated

    def test_moves_grow_quadratically_bound_variant(self):
        """Theorem 13: doubling n roughly quadruples the extracted moves."""
        moves = {n: zigzag_moves(lambda m: PTBoundWithChirality(bound=m), n).total_moves
                 for n in (8, 16, 32)}
        assert 2.5 < moves[16] / moves[8]
        assert 2.5 < moves[32] / moves[16]

    def test_moves_grow_quadratically_landmark_variant(self):
        """Theorem 15: same shape for the landmark algorithm."""
        moves = {n: zigzag_moves(lambda m: PTLandmarkWithChirality(), n, landmark=0).total_moves
                 for n in (8, 16, 32)}
        assert 2.5 < moves[16] / moves[8]
        assert 2.5 < moves[32] / moves[16]

    def test_crossing_test_never_fires_under_forcing(self):
        """The adversary's creep keeps leftSteps > rightSteps (Th. 13 proof)."""
        n = 10
        adversary = ZigZagForcingAdversary(cap=3)
        cfg = adversary.configuration(n)
        engine = build_engine(
            PTBoundWithChirality(bound=n),
            ring_size=n,
            positions=cfg["positions"],
            adversary=adversary,
            scheduler=adversary,
            transport=TransportModel.PT,
        )
        for _ in range(400):
            if engine.agents[1].terminated:
                break
            engine.step()
            mem = engine.agents[1].memory
            left, right = mem.vars.get("leftSteps"), mem.vars.get("rightSteps")
            if left is not None and right is not None and not engine.agents[1].terminated:
                # termination via the crossing test would need right >= left
                assert not (right >= left and mem.vars["state"] == "Terminate")
        assert engine.agents[1].terminated
        # the walker terminated through the span certificate, not crossing
        assert engine.agents[1].memory.Tnodes >= n

    def test_cap_validation(self):
        with pytest.raises(ConfigurationError):
            ZigZagForcingAdversary(cap=0)
        with pytest.raises(ConfigurationError):
            ZigZagForcingAdversary.configuration(4)

    def test_needs_exactly_two_agents(self):
        adversary = ZigZagForcingAdversary(cap=2)
        with pytest.raises(ConfigurationError):
            build_engine(
                PTBoundWithChirality(bound=8),
                ring_size=8,
                positions=[1, 3, 5],
                adversary=adversary,
                scheduler=adversary,
                transport=TransportModel.PT,
            )
