"""Benign and blocking adversaries (Observations 1-2 and baselines)."""

import pytest

from repro.adversary import (
    BlockAgentAdversary,
    FixedMissingEdge,
    FunctionAdversary,
    MeetingPreventionAdversary,
    NoRemoval,
    PeriodicMissingEdge,
    RandomMissingEdge,
)
from repro.algorithms.fsync import KnownUpperBound, UnconsciousExploration
from repro.core import EventKind, Trace
from repro.core.errors import ConfigurationError

from ..helpers import fsync_engine


class TestSimpleAdversaries:
    def test_no_removal(self):
        engine = fsync_engine(UnconsciousExploration(), 6, [0, 3])
        engine.step()
        assert engine.missing_edge is None

    def test_fixed_edge_window(self):
        adversary = FixedMissingEdge(2, from_round=1, until_round=3)
        engine = fsync_engine(UnconsciousExploration(), 6, [0, 3], adversary=adversary)
        engine.step()
        assert engine.missing_edge is None
        engine.step()
        assert engine.missing_edge == 2
        engine.step()
        assert engine.missing_edge == 2
        engine.step()
        assert engine.missing_edge is None

    def test_fixed_edge_validation(self):
        with pytest.raises(ConfigurationError):
            FixedMissingEdge(0, from_round=-1)
        with pytest.raises(ConfigurationError):
            FixedMissingEdge(0, from_round=5, until_round=5)
        with pytest.raises(ConfigurationError):
            fsync_engine(UnconsciousExploration(), 6, [0, 3],
                         adversary=FixedMissingEdge(9))

    def test_periodic_edge(self):
        adversary = PeriodicMissingEdge(1, period=3, duty=2)
        engine = fsync_engine(UnconsciousExploration(), 6, [0, 3], adversary=adversary)
        seen = []
        for _ in range(6):
            engine.step()
            seen.append(engine.missing_edge)
        assert seen == [1, 1, None, 1, 1, None]

    def test_periodic_validation(self):
        with pytest.raises(ConfigurationError):
            PeriodicMissingEdge(0, period=0)
        with pytest.raises(ConfigurationError):
            PeriodicMissingEdge(0, period=2, duty=3)

    def test_random_edge_is_reproducible(self):
        def edges(seed):
            adversary = RandomMissingEdge(seed=seed)
            engine = fsync_engine(UnconsciousExploration(), 8, [0, 4],
                                  adversary=adversary)
            out = []
            for _ in range(10):
                engine.step()
                out.append(engine.missing_edge)
            return out

        assert edges(42) == edges(42)
        assert edges(42) != edges(43)

    def test_random_edge_probability_zero(self):
        adversary = RandomMissingEdge(p=0.0, seed=1)
        engine = fsync_engine(UnconsciousExploration(), 6, [0, 3], adversary=adversary)
        for _ in range(10):
            engine.step()
            assert engine.missing_edge is None

    def test_random_edge_validation(self):
        with pytest.raises(ConfigurationError):
            RandomMissingEdge(p=1.5)

    def test_function_adversary(self):
        adversary = FunctionAdversary(lambda e: e.round_no % 2 or None, label="odd")
        engine = fsync_engine(UnconsciousExploration(), 6, [0, 3], adversary=adversary)
        engine.step()
        assert engine.missing_edge is None
        engine.step()
        assert engine.missing_edge == 1


class TestBlockAgentAdversary:
    """Observation 1 / Corollary 1."""

    @pytest.mark.parametrize("algorithm", [UnconsciousExploration, lambda: KnownUpperBound(8)])
    def test_target_never_moves(self, algorithm):
        engine = fsync_engine(algorithm(), 8, [3], adversary=BlockAgentAdversary(0))
        result = engine.run(300)
        assert result.agents[0].moves == 0
        assert result.visited == {3}

    def test_non_target_agents_roam_free(self):
        engine = fsync_engine(
            UnconsciousExploration(), 8, [3, 6], adversary=BlockAgentAdversary(0)
        )
        result = engine.run(400, stop_on_exploration=True)
        assert result.agents[0].moves == 0
        assert result.explored  # the other agent covers the ring

    def test_invalid_target(self):
        with pytest.raises(ValueError):
            fsync_engine(UnconsciousExploration(), 6, [0],
                         adversary=BlockAgentAdversary(3))


class TestMeetingPrevention:
    """Observation 2: with two agents, no meeting and no mutual detection."""

    def test_agents_never_share_a_node(self):
        trace = Trace(limit=None)
        engine = fsync_engine(
            UnconsciousExploration(), 9, [0, 4],
            adversary=MeetingPreventionAdversary(), trace=trace,
        )
        for _ in range(600):
            engine.step()
            a, b = engine.agents
            assert a.node != b.node

    def test_no_catches_or_meetings_for_known_bound_agents(self):
        n = 10
        engine = fsync_engine(
            KnownUpperBound(bound=n), n, [0, 5],
            adversary=MeetingPreventionAdversary(),
        )
        for _ in range(3 * n):
            if engine.all_terminated:
                break
            engine.step()
            a, b = engine.agents
            assert a.node != b.node

    def test_requires_two_distinct_agents(self):
        with pytest.raises(ValueError):
            fsync_engine(UnconsciousExploration(), 6, [0],
                         adversary=MeetingPreventionAdversary())
        with pytest.raises(ValueError):
            fsync_engine(UnconsciousExploration(), 6, [2, 2],
                         adversary=MeetingPreventionAdversary())

    def test_removes_nothing_when_no_meeting_imminent(self):
        engine = fsync_engine(
            UnconsciousExploration(), 12, [0, 6],
            adversary=MeetingPreventionAdversary(),
        )
        engine.step()
        assert engine.missing_edge is None  # far apart, both heading left
