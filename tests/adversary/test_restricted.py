"""T-interval and delta-recurrent adversary classes (§1.1.2 related work)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.adversary import (
    DeltaRecurrentAdversary,
    FixedMissingEdge,
    RandomMissingEdge,
    TIntervalAdversary,
)
from repro.algorithms.fsync import KnownUpperBound, UnconsciousExploration
from repro.core.errors import ConfigurationError

from ..helpers import fsync_engine


def missing_sequence(adversary, n, rounds, algorithm=None):
    engine = fsync_engine(
        algorithm or UnconsciousExploration(), n, [0, n // 2], adversary=adversary
    )
    out = []
    for _ in range(rounds):
        engine.step()
        out.append(engine.missing_edge)
    return out


class TestTInterval:
    def test_choice_is_held_for_t_rounds(self):
        seq = missing_sequence(
            TIntervalAdversary(RandomMissingEdge(seed=3), interval=4), 8, 20
        )
        for start in range(0, 20, 4):
            window = seq[start:start + 4]
            assert len(set(window)) == 1

    def test_interval_one_is_the_paper_model(self):
        inner = RandomMissingEdge(seed=5)
        wrapped = TIntervalAdversary(RandomMissingEdge(seed=5), interval=1)
        assert missing_sequence(inner, 8, 15) == missing_sequence(wrapped, 8, 15)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TIntervalAdversary(RandomMissingEdge(), interval=0)

    @settings(max_examples=15)
    @given(
        t=st.integers(min_value=1, max_value=6),
        seed=st.integers(min_value=0, max_value=2**12),
    )
    def test_algorithms_survive_any_interval(self, t, seed):
        n = 8
        engine = fsync_engine(
            KnownUpperBound(bound=n), n, [0, 4],
            adversary=TIntervalAdversary(RandomMissingEdge(seed=seed), interval=t),
        )
        result = engine.run(3 * n)
        assert result.explored


class TestDeltaRecurrent:
    def test_absence_streaks_are_capped(self):
        delta = 3
        seq = missing_sequence(
            DeltaRecurrentAdversary(FixedMissingEdge(2), delta=delta), 8, 30
        )
        streak = 0
        for edge in seq:
            if edge == 2:
                streak += 1
                assert streak <= delta - 1
            else:
                streak = 0

    def test_delta_one_means_static_ring(self):
        seq = missing_sequence(
            DeltaRecurrentAdversary(FixedMissingEdge(2), delta=1), 8, 10
        )
        assert seq == [None] * 10

    def test_inner_choice_passes_through_when_varied(self):
        inner = RandomMissingEdge(seed=9)
        wrapped = DeltaRecurrentAdversary(RandomMissingEdge(seed=9), delta=50)
        # a random inner rarely repeats 50x; the wrapper should be invisible
        assert missing_sequence(inner, 10, 30) == missing_sequence(wrapped, 10, 30)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DeltaRecurrentAdversary(FixedMissingEdge(0), delta=0)

    @settings(max_examples=15)
    @given(
        delta=st.integers(min_value=1, max_value=8),
        edge=st.integers(min_value=0, max_value=7),
    )
    def test_blocked_agents_always_get_through(self, delta, edge):
        """delta-recurrence turns perpetual blocking into bounded waiting."""
        n = 8
        engine = fsync_engine(
            UnconsciousExploration(), n, [0, 4],
            adversary=DeltaRecurrentAdversary(FixedMissingEdge(edge), delta=delta),
        )
        result = engine.run(40 * n, stop_on_exploration=True)
        assert result.explored
