"""The impossibility constructions (Theorems 1, 2, 9, 10) as demonstrations."""

import pytest

from repro.adversary import (
    NSStarvationAdversary,
    theorem10_configuration,
)
from repro.algorithms import GuessAndTerminate
from repro.algorithms.ssync import (
    ETExactSizeNoChirality,
    PTBoundNoChirality,
    PTBoundWithChirality,
    PTLandmarkWithChirality,
)
from repro.api import build_engine, run_exploration
from repro.core import TerminationMode, TransportModel
from repro.core.errors import ConfigurationError

from ..helpers import fsync_engine


class TestTheorem1And2Demo:
    """No size knowledge => any terminating guess fails on a larger ring."""

    def test_strawman_succeeds_on_a_small_ring(self):
        result = run_exploration(
            GuessAndTerminate(budget=30), ring_size=5, positions=[0, 2],
            max_rounds=100,
        )
        assert result.explored  # lucky: the budget covers a 5-ring

    def test_strawman_fails_on_a_large_ring(self):
        """The Theorem 1 scaling argument, concretely."""
        budget = 30
        result = run_exploration(
            GuessAndTerminate(budget=budget), ring_size=budget + 4,
            positions=[0, 2], max_rounds=200,
        )
        assert result.termination_mode() is TerminationMode.INCORRECT

    def test_any_budget_has_a_defeating_ring(self):
        for budget in (5, 12, 33):
            result = run_exploration(
                GuessAndTerminate(budget=budget), ring_size=budget + 3,
                positions=[0, 1], max_rounds=budget + 50,
            )
            assert result.termination_mode() is TerminationMode.INCORRECT

    def test_budget_validation(self):
        with pytest.raises(ConfigurationError):
            GuessAndTerminate(budget=0)


class TestTheorem9:
    """NS starvation: nobody ever moves, under any of our algorithms."""

    @pytest.mark.parametrize(
        "algorithm,agents,flip",
        [
            (lambda n: PTBoundWithChirality(bound=n), 2, ()),
            (lambda n: PTBoundNoChirality(bound=n), 3, (1,)),
            (lambda n: ETExactSizeNoChirality(ring_size=n), 3, (2,)),
        ],
    )
    def test_zero_moves_forever(self, algorithm, agents, flip):
        n = 8
        adversary = NSStarvationAdversary()
        positions = [0, 3, 5][:agents]
        engine = build_engine(
            algorithm(n),
            ring_size=n,
            positions=positions,
            chirality=not flip,
            flipped=flip,
            adversary=adversary,
            scheduler=adversary,
            transport=TransportModel.NS,
        )
        result = engine.run(1_500)
        assert result.total_moves == 0
        assert not result.explored
        assert not result.any_terminated

    def test_schedule_is_fair(self):
        """Every agent is activated infinitely often (here: regularly)."""
        n = 6
        adversary = NSStarvationAdversary()
        engine = build_engine(
            PTBoundWithChirality(bound=n),
            ring_size=n,
            positions=[0, 3],
            adversary=adversary,
            scheduler=adversary,
            transport=TransportModel.NS,
        )
        for _ in range(200):
            engine.step()
            for agent in engine.agents:
                assert agent.rounds_since_active <= len(engine.agents)


class TestTheorem10:
    """PT, two agents, no chirality: stranded on four nodes forever."""

    @pytest.mark.parametrize("n", [5, 8, 12])
    def test_two_agents_stranded(self, n):
        cfg = theorem10_configuration(n)
        result = run_exploration(
            PTBoundWithChirality(bound=n), ring_size=n,
            transport=TransportModel.PT, max_rounds=2_000, **cfg,
        )
        assert not result.explored
        assert len(result.visited) == 4
        assert not result.any_terminated

    def test_three_agent_algorithm_with_two_agents_is_also_stuck(self):
        n = 8
        cfg = theorem10_configuration(n)
        result = run_exploration(
            PTBoundNoChirality(bound=n), ring_size=n,
            transport=TransportModel.PT, max_rounds=2_000, **cfg,
        )
        assert not result.explored
        assert not result.any_terminated

    def test_landmark_does_not_help(self):
        """Theorem 10 holds even with a landmark and known n."""
        n = 8
        cfg = theorem10_configuration(n)
        result = run_exploration(
            PTLandmarkWithChirality(), ring_size=n, landmark=5,
            transport=TransportModel.PT, max_rounds=2_000, **cfg,
        )
        assert not result.explored
        assert not result.any_terminated

    def test_configuration_validation(self):
        with pytest.raises(ConfigurationError):
            theorem10_configuration(4)

    def test_chirality_restores_solvability(self):
        """Control: same adversary, but agents sharing an orientation cope."""
        n = 8
        cfg = theorem10_configuration(n)
        result = run_exploration(
            PTBoundWithChirality(bound=n), ring_size=n,
            positions=cfg["positions"],  # same starts, but with chirality
            adversary=cfg["adversary"],
            transport=TransportModel.PT, max_rounds=10_000,
        )
        assert result.explored
