"""schedulers test package."""
