"""Activation schedulers: FSYNC, round-robin, random-fair, ET fairness."""

import pytest

from repro.adversary import FixedMissingEdge, NoRemoval
from repro.core import Engine, Ring, STAY, TransportModel, move
from repro.core.directions import LEFT
from repro.core.errors import ConfigurationError
from repro.schedulers import (
    ETFairScheduler,
    FsyncScheduler,
    RandomFairScheduler,
    RoundRobinScheduler,
    ScriptedScheduler,
)


class Idle:
    """All agents stay put forever (scheduler tests only)."""

    name = "idle"

    def setup(self, memory):
        return None

    def compute(self, snapshot, memory):
        return STAY


class PushLeft:
    """All agents push left forever."""

    name = "push-left"

    def setup(self, memory):
        return None

    def compute(self, snapshot, memory):
        return move(LEFT)


def make_engine(scheduler, *, n=8, agents=3, algorithm=None, adversary=None,
                transport=TransportModel.NS):
    return Engine(
        Ring(n),
        algorithm or Idle(),
        list(range(0, 2 * agents, 2)),
        scheduler=scheduler,
        adversary=adversary or NoRemoval(),
        transport=transport,
    )


class TestFsync:
    def test_everyone_active_every_round(self):
        engine = make_engine(FsyncScheduler())
        for _ in range(5):
            engine.step()
            assert engine.last_active == {0, 1, 2}


class TestRoundRobin:
    def test_window_one_rotates(self):
        engine = make_engine(RoundRobinScheduler(window=1))
        seen = []
        for _ in range(6):
            engine.step()
            seen.append(tuple(engine.last_active))
        assert seen == [(0,), (1,), (2,), (0,), (1,), (2,)]

    def test_window_two(self):
        engine = make_engine(RoundRobinScheduler(window=2))
        engine.step()
        assert engine.last_active == {0, 1}
        engine.step()
        assert engine.last_active == {1, 2}

    def test_fairness(self):
        engine = make_engine(RoundRobinScheduler(window=1))
        for _ in range(30):
            engine.step()
            for agent in engine.agents:
                assert agent.rounds_since_active < 3

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RoundRobinScheduler(window=0)


class TestRandomFair:
    def test_reproducibility(self):
        def pattern(seed):
            engine = make_engine(RandomFairScheduler(p=0.5, seed=seed))
            out = []
            for _ in range(20):
                engine.step()
                out.append(tuple(sorted(engine.last_active)))
            return out

        assert pattern(7) == pattern(7)

    def test_never_empty(self):
        engine = make_engine(RandomFairScheduler(p=0.01, seed=1))
        for _ in range(50):
            engine.step()
            assert engine.last_active

    def test_starvation_cap_is_enforced(self):
        cap = 5
        engine = make_engine(RandomFairScheduler(p=0.05, seed=3, starvation_cap=cap))
        for _ in range(200):
            engine.step()
            for agent in engine.agents:
                assert agent.rounds_since_active <= cap

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RandomFairScheduler(p=0.0)
        with pytest.raises(ConfigurationError):
            RandomFairScheduler(starvation_cap=0)


class TestScripted:
    def test_sequence_cycles(self):
        engine = make_engine(ScriptedScheduler([{0}, {1, 2}]))
        engine.step()
        assert engine.last_active == {0}
        engine.step()
        assert engine.last_active == {1, 2}
        engine.step()
        assert engine.last_active == {0}

    def test_callable_script(self):
        engine = make_engine(ScriptedScheduler(lambda e: {e.round_no % 3}))
        engine.step()
        assert engine.last_active == {0}
        engine.step()
        assert engine.last_active == {1}

    def test_empty_script_rejected(self):
        engine = make_engine(ScriptedScheduler([]))
        with pytest.raises(ConfigurationError):
            engine.step()


class TestETFairness:
    def test_forces_blocked_sleeper_awake_when_edge_present(self):
        """The ET simultaneity condition, enforced after `patience` rounds."""
        patience = 4
        # Base scheduler never activates agent 0 on its own.
        base = ScriptedScheduler(lambda e: {1})
        scheduler = ETFairScheduler(base, patience=patience)
        engine = Engine(
            Ring(8),
            PushLeft(),
            [3, 6],
            scheduler=scheduler,
            # agent 0 pushes edge 2; missing for 2 rounds only
            adversary=FixedMissingEdge(2, until_round=2),
            transport=TransportModel.ET,
        )
        # Round 0: agent 0 must be activated (it is not yet on a port, and
        # the base scheduler only picks agent 1) -- via the starvation-free
        # base?  No: ETFair only adds port sleepers, so activate manually.
        # Instead run and check the guarantee: within patience rounds of
        # the edge being back, agent 0 has crossed.
        for _ in range(2):
            engine.step()  # agent 0 asleep in the interior: fine
        # wake agent 0 once so it walks onto the port while the edge is missing
        scheduler._base = ScriptedScheduler(lambda e: {0, 1})
        engine.step()
        scheduler._base = ScriptedScheduler(lambda e: {1})
        assert engine.agents[0].port is None  # edge back at round 2: it moved

    def test_debt_accumulates_only_when_edge_present(self):
        patience = 3
        base = ScriptedScheduler(lambda e: {1})
        scheduler = ETFairScheduler(base, patience=patience)
        engine = Engine(
            Ring(8),
            PushLeft(),
            [3, 6],
            scheduler=scheduler,
            adversary=FixedMissingEdge(2),  # never returns
            transport=TransportModel.ET,
        )
        # Let agent 0 reach the port first.
        scheduler._base = ScriptedScheduler(lambda e: {0, 1})
        engine.step()
        scheduler._base = ScriptedScheduler(lambda e: {1})
        assert engine.agents[0].port is not None
        for _ in range(20):
            engine.step()
        # Edge never present: ET owes the agent nothing; it stays asleep.
        assert engine.agents[0].memory.Ttime == 1

    def test_sleeper_eventually_crosses(self):
        patience = 3
        base = ScriptedScheduler(lambda e: {1})
        scheduler = ETFairScheduler(base, patience=patience)
        engine = Engine(
            Ring(8),
            PushLeft(),
            [3, 6],
            scheduler=scheduler,
            adversary=FixedMissingEdge(2, until_round=2),
            transport=TransportModel.ET,
        )
        scheduler._base = ScriptedScheduler(lambda e: {0, 1})
        engine.step()  # agent 0 onto the port (edge missing)
        scheduler._base = ScriptedScheduler(lambda e: {1})
        start_node = engine.agents[0].node
        for _ in range(patience + 3):
            engine.step()
        assert engine.agents[0].node != start_node  # force-woken and crossed

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ETFairScheduler(FsyncScheduler(), patience=0)
