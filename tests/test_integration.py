"""Cross-cutting integration: the feasibility map, executed.

Every POSSIBLE row of Tables 2 and 4 is run in its stated setting and must
achieve its stated termination requirement; representative IMPOSSIBLE rows
are run against their constructions and must fail exactly as predicted.
This is the paper's evaluation as one executable matrix.
"""

import pytest

from repro import TransportModel, build_engine, run_exploration
from repro.adversary import (
    NSStarvationAdversary,
    RandomMissingEdge,
    theorem10_configuration,
)
from repro.algorithms import (
    ETExactSizeNoChirality,
    ETUnconscious,
    KnownUpperBound,
    LandmarkNoChirality,
    LandmarkWithChirality,
    PTBoundNoChirality,
    PTBoundWithChirality,
    PTLandmarkNoChirality,
    PTLandmarkWithChirality,
    UnconsciousExploration,
)
from repro.analysis.checker import check_safety
from repro.core import TerminationMode
from repro.schedulers import ETFairScheduler, FsyncScheduler, RandomFairScheduler
from repro.theory import (
    Knowledge,
    Model,
    ResultKind,
    Termination,
    lookup,
    no_chirality_timeout,
)

N = 8
SEED = 7


def build_for_row(row, seed=SEED):
    """Instantiate the row's algorithm in its stated setting."""
    landmark = 0 if Knowledge.LANDMARK in row.assumptions else None
    chirality = Knowledge.CHIRALITY in row.assumptions
    agents = int(row.agents)
    positions = [1, 4, 6][:agents]
    flipped = () if chirality else ((1,) if agents >= 2 else ())

    factory = {
        "KnownUpperBound": lambda: KnownUpperBound(bound=N),
        "UnconsciousExploration": UnconsciousExploration,
        "LandmarkWithChirality": LandmarkWithChirality,
        "LandmarkNoChirality": LandmarkNoChirality,
        "PTBoundWithChirality": lambda: PTBoundWithChirality(bound=N),
        "PTLandmarkWithChirality": PTLandmarkWithChirality,
        "PTBoundNoChirality": lambda: PTBoundNoChirality(bound=N),
        "PTLandmarkNoChirality": PTLandmarkNoChirality,
        "ETUnconscious": ETUnconscious,
        "ETExactSizeNoChirality": lambda: ETExactSizeNoChirality(ring_size=N),
    }[row.algorithm]

    if row.model is Model.FSYNC:
        scheduler = FsyncScheduler()
        transport = TransportModel.NS
    elif row.model is Model.SSYNC_PT:
        scheduler = RandomFairScheduler(seed=seed)
        transport = TransportModel.PT
    else:  # SSYNC_ET
        scheduler = ETFairScheduler(RandomFairScheduler(seed=seed))
        transport = TransportModel.ET

    return build_engine(
        factory(),
        ring_size=N,
        positions=positions,
        landmark=landmark,
        chirality=chirality,
        flipped=flipped,
        adversary=RandomMissingEdge(seed=seed + 1),
        scheduler=scheduler,
        transport=transport,
    )


POSSIBLE_ROWS = lookup(kind=ResultKind.POSSIBLE)


class TestFeasibilityMapIsLive:
    @pytest.mark.parametrize(
        "row", POSSIBLE_ROWS, ids=[r.algorithm for r in POSSIBLE_ROWS]
    )
    def test_possible_row_achieves_its_claim(self, row):
        engine = build_for_row(row)
        horizon = no_chirality_timeout(N) + 10
        unconscious = row.termination is Termination.UNCONSCIOUS
        result = engine.run(horizon, stop_on_exploration=unconscious)
        assert check_safety(result) == [], row.describe()
        assert result.explored, row.describe()
        mode = result.termination_mode()
        if row.termination is Termination.EXPLICIT:
            assert mode is TerminationMode.EXPLICIT, row.describe()
        elif row.termination is Termination.PARTIAL:
            assert mode in (TerminationMode.EXPLICIT, TerminationMode.PARTIAL), (
                row.describe()
            )
        else:
            assert mode is TerminationMode.UNCONSCIOUS, row.describe()

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_possible_rows_across_seeds(self, seed):
        for row in POSSIBLE_ROWS:
            engine = build_for_row(row, seed=seed)
            unconscious = row.termination is Termination.UNCONSCIOUS
            result = engine.run(
                no_chirality_timeout(N) + 10, stop_on_exploration=unconscious
            )
            assert check_safety(result) == [], (seed, row.describe())
            assert result.explored, (seed, row.describe())


class TestImpossibleRowsFail:
    def test_ns_row(self):
        """Theorem 9: the NS construction stops every SSYNC algorithm."""
        adversary = NSStarvationAdversary()
        engine = build_engine(
            PTBoundNoChirality(bound=N),
            ring_size=N,
            positions=[1, 4, 6],
            chirality=False,
            flipped=(1,),
            adversary=adversary,
            scheduler=adversary,
            transport=TransportModel.NS,
        )
        result = engine.run(1_000)
        assert result.total_moves == 0

    def test_pt_two_agents_no_chirality_row(self):
        """Theorem 10: two PT agents without chirality stay stranded."""
        cfg = theorem10_configuration(N)
        result = run_exploration(
            PTBoundWithChirality(bound=N), ring_size=N,
            transport=TransportModel.PT, max_rounds=1_500, **cfg,
        )
        assert not result.explored

    def test_pt_full_termination_row(self):
        """Theorem 11: under a perpetual block, only partial termination."""
        from repro.adversary import FixedMissingEdge

        result = run_exploration(
            PTBoundWithChirality(bound=N), ring_size=N, positions=[3, 4],
            adversary=FixedMissingEdge(6),
            scheduler=RandomFairScheduler(seed=1),
            transport=TransportModel.PT, max_rounds=5_000,
        )
        assert result.termination_mode() is TerminationMode.PARTIAL
