"""Theorems 7-8 / Figures 8, 12, 13: landmark exploration without chirality.

These runs can legitimately take the full O(n log n) horizon (the Happy
timeout is ``32((3 ceil(log n)+3) 5n)+1``), so sizes are kept small.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.adversary import (
    FixedMissingEdge,
    NoRemoval,
    PeriodicMissingEdge,
    RandomMissingEdge,
)
from repro.algorithms.fsync import LandmarkNoChirality, StartFromLandmarkNoChirality
from repro.algorithms.fsync.landmark_no_chirality import no_chirality_timeout
from repro.analysis.checker import check_safety
from repro.core import TerminationMode

from ..helpers import fsync_engine


def horizon(n: int) -> int:
    return no_chirality_timeout(n) + 10


class TestTimeoutFormula:
    def test_matches_paper_expression(self):
        # n = 8: 32 * ((3*3 + 3) * 5 * 8) = 32 * 480 = 15360
        assert no_chirality_timeout(8) == 15360

    def test_is_n_log_n(self):
        """Doubling n grows the bound by ~2x plus a log factor."""
        small, large = no_chirality_timeout(8), no_chirality_timeout(16)
        assert 2.0 < large / small < 3.0


class TestStartFromLandmark:
    @pytest.mark.parametrize("n", [4, 6, 8])
    def test_opposite_orientations_static_ring(self, n):
        engine = fsync_engine(
            StartFromLandmarkNoChirality(), n, [0, 0], landmark=0,
            chirality=False, flipped=(1,),
        )
        result = engine.run(horizon(n))
        assert result.termination_mode() is TerminationMode.EXPLICIT

    @pytest.mark.parametrize("n", [4, 6, 8])
    def test_same_orientation(self, n):
        engine = fsync_engine(
            StartFromLandmarkNoChirality(), n, [0, 0], landmark=0, chirality=True
        )
        result = engine.run(horizon(n))
        assert result.termination_mode() is TerminationMode.EXPLICIT

    def test_figure12_same_edge_bounce_terminates_at_landmark(self):
        """Both agents bounce off the same (diametral) edge and meet back
        at the landmark simultaneously: the AtLandmark dance certifies
        exploration (Figure 12).  Needs equal arm lengths, hence odd n:
        for n = 7 and landmark v0, edge e_3 = (v3, v4) is 3 hops both ways.
        """
        n = 7
        engine = fsync_engine(
            StartFromLandmarkNoChirality(), n, [0, 0], landmark=0,
            chirality=False, flipped=(1,),
            adversary=FixedMissingEdge(3),
        )
        result = engine.run(horizon(n))
        assert result.termination_mode() is TerminationMode.EXPLICIT
        # termination must be fast (the dance, not the big timeout)
        assert result.last_termination_round <= 2 * n

    def test_non_diametral_bounce_still_safe(self):
        """With unequal arms the dance never fires; the run still finishes
        correctly through IDs or the Happy timeout."""
        n = 6
        engine = fsync_engine(
            StartFromLandmarkNoChirality(), n, [0, 0], landmark=0,
            chirality=False, flipped=(1,),
            adversary=FixedMissingEdge(2),
        )
        result = engine.run(horizon(n))
        assert check_safety(result) == []
        assert result.termination_mode() is TerminationMode.EXPLICIT

    @settings(max_examples=12)
    @given(
        n=st.integers(min_value=4, max_value=8),
        seed=st.integers(min_value=0, max_value=2**10),
        flip=st.sampled_from([(), (1,)]),
    )
    def test_random_adversary_safe_and_terminating(self, n, seed, flip):
        engine = fsync_engine(
            StartFromLandmarkNoChirality(), n, [0, 0], landmark=0,
            chirality=False, flipped=flip,
            adversary=RandomMissingEdge(seed=seed),
        )
        result = engine.run(horizon(n))
        assert check_safety(result) == []
        assert result.termination_mode() is TerminationMode.EXPLICIT


class TestArbitraryStart:
    @pytest.mark.parametrize("n,starts", [(5, (1, 3)), (6, (2, 5)), (8, (1, 6))])
    def test_static_ring(self, n, starts):
        engine = fsync_engine(
            LandmarkNoChirality(), n, list(starts), landmark=0,
            chirality=False, flipped=(1,),
        )
        result = engine.run(horizon(n))
        assert result.termination_mode() is TerminationMode.EXPLICIT

    def test_restart_path_via_landmark_meeting(self):
        """Agents meeting at the landmark mid-ID-phase restart from InitL
        rather than terminating (the Figure 13 modification)."""
        n = 6
        engine = fsync_engine(
            LandmarkNoChirality(), n, [1, 5], landmark=0,
            chirality=False, flipped=(1,),
            adversary=PeriodicMissingEdge(3, 5, 2),
        )
        result = engine.run(horizon(n))
        assert check_safety(result) == []
        assert result.explored

    @settings(max_examples=12)
    @given(
        n=st.integers(min_value=4, max_value=7),
        a=st.integers(min_value=0, max_value=6),
        b=st.integers(min_value=0, max_value=6),
        seed=st.integers(min_value=0, max_value=2**10),
    )
    def test_random_runs_safe_and_live(self, n, a, b, seed):
        engine = fsync_engine(
            LandmarkNoChirality(), n, [a % n, b % n], landmark=0,
            chirality=False, flipped=(1,),
            adversary=RandomMissingEdge(seed=seed),
        )
        result = engine.run(horizon(n))
        assert check_safety(result) == []
        assert result.termination_mode() is TerminationMode.EXPLICIT

    def test_ids_are_assigned_after_two_blocks(self):
        """Drive one agent through two blocks and check the ID machinery."""
        n = 8
        engine = fsync_engine(
            LandmarkNoChirality(), n, [2, 6], landmark=0,
            chirality=False, flipped=(1,),
            adversary=PeriodicMissingEdge(0, 4, 2),
        )
        for _ in range(horizon(n)):
            if engine.all_terminated:
                break
            engine.step()
            for agent in engine.agents:
                if "id" in agent.memory.vars:
                    assert agent.memory.vars["schedule"].agent_id == agent.memory.vars["id"]
        result = engine._build_result("test")
        assert check_safety(result) == []
