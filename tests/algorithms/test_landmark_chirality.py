"""Theorem 6 / Figure 4: LandmarkWithChirality.

Claims under test: two anonymous agents with chirality on a ring with a
landmark (no size knowledge) explore and *both* explicitly terminate in
O(n) rounds; termination never precedes exploration.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.adversary import (
    BlockAgentAdversary,
    FixedMissingEdge,
    MeetingPreventionAdversary,
    NoRemoval,
    PeriodicMissingEdge,
    RandomMissingEdge,
)
from repro.algorithms.fsync import LandmarkWithChirality
from repro.analysis.checker import check_safety
from repro.core import TerminationMode

from ..helpers import fsync_engine

#: O(n) with a generous constant: Lemma 1 gives 7n-1 for the no-catch case
#: and Theorem 6's accounting stays under ~20n overall.
def horizon(n: int) -> int:
    return 60 * n + 60


class TestBenignRuns:
    @pytest.mark.parametrize("n", [3, 4, 6, 9, 14, 25])
    def test_explicit_termination(self, n):
        engine = fsync_engine(LandmarkWithChirality(), n, [1, n // 2], landmark=0)
        result = engine.run(horizon(n))
        assert result.termination_mode() is TerminationMode.EXPLICIT

    def test_termination_is_linear_in_n(self):
        for n in (8, 16, 32):
            engine = fsync_engine(LandmarkWithChirality(), n, [1, n // 2], landmark=0)
            result = engine.run(horizon(n))
            assert result.all_terminated
            assert result.last_termination_round <= horizon(n)

    def test_starting_on_the_landmark(self):
        engine = fsync_engine(LandmarkWithChirality(), 8, [0, 0], landmark=0)
        result = engine.run(horizon(8))
        assert result.termination_mode() is TerminationMode.EXPLICIT

    def test_landmark_elsewhere(self):
        engine = fsync_engine(LandmarkWithChirality(), 10, [2, 6], landmark=7)
        result = engine.run(horizon(10))
        assert result.termination_mode() is TerminationMode.EXPLICIT


class TestAdversarialRuns:
    @pytest.mark.parametrize("edge", [0, 2, 5])
    def test_perpetually_missing_edge(self, edge):
        n = 8
        engine = fsync_engine(
            LandmarkWithChirality(), n, [1, 5], landmark=0,
            adversary=FixedMissingEdge(edge),
        )
        result = engine.run(horizon(n))
        assert result.termination_mode() is TerminationMode.EXPLICIT

    def test_block_one_agent(self):
        """The unblocked agent loops, learns n, and both eventually stop."""
        n = 9
        engine = fsync_engine(
            LandmarkWithChirality(), n, [2, 6], landmark=0,
            adversary=BlockAgentAdversary(0),
        )
        result = engine.run(horizon(n))
        assert check_safety(result) == []
        assert result.explored

    def test_meeting_prevention_cannot_block_termination(self):
        """Lemma 1: agents that never interact still learn n and stop."""
        n = 9
        engine = fsync_engine(
            LandmarkWithChirality(), n, [2, 6], landmark=0,
            adversary=MeetingPreventionAdversary(),
        )
        result = engine.run(horizon(n))
        assert result.termination_mode() is TerminationMode.EXPLICIT

    @settings(max_examples=40)
    @given(
        n=st.integers(min_value=3, max_value=16),
        a=st.integers(min_value=0, max_value=15),
        b=st.integers(min_value=0, max_value=15),
        landmark=st.integers(min_value=0, max_value=15),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_random_runs_are_safe_and_live(self, n, a, b, landmark, seed):
        engine = fsync_engine(
            LandmarkWithChirality(), n, [a % n, b % n], landmark=landmark % n,
            adversary=RandomMissingEdge(seed=seed),
        )
        result = engine.run(horizon(n))
        assert check_safety(result) == []
        assert result.termination_mode() is TerminationMode.EXPLICIT

    @settings(max_examples=20)
    @given(
        n=st.integers(min_value=4, max_value=12),
        edge=st.integers(min_value=0, max_value=11),
        period=st.integers(min_value=2, max_value=7),
        duty=st.integers(min_value=1, max_value=7),
    )
    def test_periodic_edges(self, n, edge, period, duty):
        engine = fsync_engine(
            LandmarkWithChirality(), n, [1, n - 2], landmark=0,
            adversary=PeriodicMissingEdge(edge % n, period, min(duty, period)),
        )
        result = engine.run(horizon(n))
        assert check_safety(result) == []
        assert result.explored


class TestRoleMachinery:
    def test_catch_assigns_roles(self):
        """Block agent 0; agent 1 walks into it and becomes B (Bounce)."""
        n = 8
        engine = fsync_engine(
            LandmarkWithChirality(), n, [3, 5], landmark=0,
            adversary=FixedMissingEdge(2),
        )
        states = set()
        for _ in range(8):
            engine.step()
            states.add(engine.agents[1].memory.vars["state"])
        assert "Bounce" in states
        assert engine.agents[0].memory.vars["state"] in {"Forward", "FComm", "Terminate"}

    def test_no_premature_termination_after_handshake(self):
        """The keep-going handshake must not trip the meeting rule.

        Force an early catch (blocked edge), let the comm dance resolve to
        keep-going, and verify nobody has terminated while nodes are still
        unexplored.
        """
        n = 12
        engine = fsync_engine(
            LandmarkWithChirality(), n, [3, 5], landmark=9,
            adversary=FixedMissingEdge(2, until_round=30),
        )
        for _ in range(12):
            engine.step()
            for agent in engine.agents:
                if agent.terminated:
                    assert engine.exploration_complete
        result = engine.run(horizon(n))
        assert result.termination_mode() is TerminationMode.EXPLICIT
