"""Theorems 12, 14, 16, 17 (and 11's flip side): the PT algorithms.

Claims under test: exploration always completes; at least one agent
explicitly terminates while the others terminate or wait perpetually on a
port; termination never precedes exploration; move counts stay within the
O(N²)/O(n²) envelopes.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.adversary import FixedMissingEdge, NoRemoval, RandomMissingEdge
from repro.algorithms.ssync import (
    PTBoundNoChirality,
    PTBoundWithChirality,
    PTLandmarkNoChirality,
    PTLandmarkWithChirality,
)
from repro.analysis.checker import check_safety
from repro.core import TerminationMode
from repro.core.errors import ConfigurationError
from repro.schedulers import RandomFairScheduler, RoundRobinScheduler

from ..helpers import pt_engine

HORIZON = 60_000


def acceptable_pt_outcome(result) -> bool:
    """Theorem 12/16's guarantee: one terminates, rest terminate or wait."""
    if not result.explored or not result.any_terminated:
        return False
    return all(a.terminated or a.waiting_on_port for a in result.agents)


class TestPTBoundWithChirality:
    def test_bound_floor(self):
        with pytest.raises(ConfigurationError):
            PTBoundWithChirality(bound=2)

    @pytest.mark.parametrize("n", [3, 5, 8, 12])
    def test_random_runs_explore_and_partially_terminate(self, n):
        engine = pt_engine(PTBoundWithChirality(bound=n), n, [0, n // 2], seed=n)
        result = engine.run(HORIZON)
        assert check_safety(result) == []
        assert result.explored
        assert result.any_terminated

    def test_loose_bound(self):
        engine = pt_engine(PTBoundWithChirality(bound=17), 9, [0, 4], seed=3)
        result = engine.run(HORIZON)
        assert check_safety(result) == []
        assert result.explored

    def test_perpetual_missing_edge_gives_partial_termination(self):
        """Theorem 11's flip side: one agent may wait forever (and does)."""
        n = 8
        engine = pt_engine(
            PTBoundWithChirality(bound=n), n, [3, 4],
            adversary=FixedMissingEdge(6),
            scheduler=RandomFairScheduler(seed=1),
        )
        result = engine.run(5_000)
        assert result.termination_mode() is TerminationMode.PARTIAL
        waiter = next(a for a in result.agents if not a.terminated)
        assert waiter.waiting_on_port

    def test_no_removal_terminates_via_span(self):
        n = 7
        engine = pt_engine(
            PTBoundWithChirality(bound=n), n, [0, 3],
            adversary=NoRemoval(), scheduler=RandomFairScheduler(seed=9),
        )
        result = engine.run(HORIZON)
        assert check_safety(result) == []
        assert result.explored

    @settings(max_examples=25)
    @given(
        n=st.integers(min_value=3, max_value=12),
        gap=st.integers(min_value=0, max_value=11),
        seed=st.integers(min_value=0, max_value=2**16),
        slack=st.integers(min_value=0, max_value=5),
    )
    def test_property_safe_and_live(self, n, gap, seed, slack):
        engine = pt_engine(
            PTBoundWithChirality(bound=n + slack), n, [0, gap % n], seed=seed
        )
        result = engine.run(HORIZON)
        assert check_safety(result) == []
        assert acceptable_pt_outcome(result)

    def test_single_activation_scheduler(self):
        """Round-robin window 1: the slowest fair schedule."""
        n = 6
        engine = pt_engine(
            PTBoundWithChirality(bound=n), n, [0, 3],
            adversary=RandomMissingEdge(seed=5),
            scheduler=RoundRobinScheduler(window=1),
        )
        result = engine.run(HORIZON)
        assert check_safety(result) == []
        assert result.explored

    def test_moves_stay_quadratic(self):
        for n in (6, 12, 24):
            engine = pt_engine(PTBoundWithChirality(bound=n), n, [0, n // 2], seed=n)
            result = engine.run(HORIZON)
            assert result.total_moves <= 8 * n * n


class TestPTLandmarkWithChirality:
    @pytest.mark.parametrize("n", [3, 5, 9, 14])
    def test_random_runs(self, n):
        engine = pt_engine(
            PTLandmarkWithChirality(), n, [1, n // 2], landmark=0, seed=n
        )
        result = engine.run(HORIZON)
        assert check_safety(result) == []
        assert result.explored
        assert result.any_terminated

    def test_terminator_knows_the_size(self):
        n = 8
        engine = pt_engine(PTLandmarkWithChirality(), n, [1, 4], landmark=0, seed=2)
        engine.run(HORIZON)
        sizes = [a.memory.size for a in engine.agents if a.terminated]
        assert sizes and all(s == n for s in sizes)

    @settings(max_examples=20)
    @given(
        n=st.integers(min_value=3, max_value=10),
        a=st.integers(min_value=0, max_value=9),
        b=st.integers(min_value=0, max_value=9),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_property_safe_and_live(self, n, a, b, seed):
        engine = pt_engine(
            PTLandmarkWithChirality(), n, [a % n, b % n], landmark=0, seed=seed
        )
        result = engine.run(HORIZON)
        assert check_safety(result) == []
        assert acceptable_pt_outcome(result)


class TestPTBoundNoChirality:
    @pytest.mark.parametrize("flip", [(), (1,), (0, 2), (1, 2)])
    def test_all_orientation_patterns(self, flip):
        n = 9
        engine = pt_engine(
            PTBoundNoChirality(bound=n), n, [0, 3, 6],
            chirality=False, flipped=flip, seed=len(flip),
        )
        result = engine.run(HORIZON)
        assert check_safety(result) == []
        assert result.explored
        assert result.any_terminated

    @settings(max_examples=20)
    @given(
        n=st.integers(min_value=4, max_value=11),
        seed=st.integers(min_value=0, max_value=2**16),
        flip=st.sampled_from([(), (0,), (1,), (2,), (0, 1), (1, 2)]),
    )
    def test_property_safe_and_live(self, n, seed, flip):
        positions = [0, n // 3, (2 * n) // 3]
        engine = pt_engine(
            PTBoundNoChirality(bound=n), n, positions,
            chirality=False, flipped=flip, seed=seed,
        )
        result = engine.run(HORIZON)
        assert check_safety(result) == []
        assert acceptable_pt_outcome(result)

    def test_co_located_starts(self):
        n = 8
        engine = pt_engine(
            PTBoundNoChirality(bound=n), n, [2, 2, 2],
            chirality=False, flipped=(1,), seed=11,
        )
        result = engine.run(HORIZON)
        assert check_safety(result) == []
        assert result.explored

    def test_perpetual_missing_edge(self):
        """Two agents pin the missing edge; the third sweeps and stops."""
        n = 8
        engine = pt_engine(
            PTBoundNoChirality(bound=n), n, [1, 4, 6],
            chirality=False, flipped=(2,),
            adversary=FixedMissingEdge(0),
            scheduler=RandomFairScheduler(seed=3),
        )
        result = engine.run(HORIZON)
        assert check_safety(result) == []
        assert result.explored
        assert result.any_terminated


class TestPTLandmarkNoChirality:
    @pytest.mark.parametrize("n", [5, 8, 11])
    def test_random_runs(self, n):
        engine = pt_engine(
            PTLandmarkNoChirality(), n, [1, n // 2, n - 1], landmark=0,
            chirality=False, flipped=(1,), seed=n,
        )
        result = engine.run(HORIZON)
        assert check_safety(result) == []
        assert result.explored
        assert result.any_terminated

    @settings(max_examples=15)
    @given(
        n=st.integers(min_value=4, max_value=10),
        seed=st.integers(min_value=0, max_value=2**16),
        flip=st.sampled_from([(), (1,), (0, 2)]),
    )
    def test_property_safe_and_live(self, n, seed, flip):
        positions = [0, n // 3, (2 * n) // 3]
        engine = pt_engine(
            PTLandmarkNoChirality(), n, positions, landmark=1 % n,
            chirality=False, flipped=flip, seed=seed,
        )
        result = engine.run(HORIZON)
        assert check_safety(result) == []
        assert acceptable_pt_outcome(result)
