"""White-box tests of the PT/ET zig-zag machinery (Figures 14 and 18).

These pin the internal bookkeeping the correctness proofs reason about:
``leftSteps``/``rightSteps`` capture the exact leg lengths, ``d`` grows
strictly across legs (Lemma 4), the crossing test fires exactly when the
paper says, and ``ExploreNoResetEsteps`` keeps the step counter across
meeting transitions.
"""

from repro.adversary import FixedMissingEdge, NoRemoval
from repro.algorithms.ssync import (
    ETExactSizeNoChirality,
    PTBoundNoChirality,
    PTBoundWithChirality,
)
from repro.api import build_engine
from repro.core import TransportModel
from repro.schedulers import FsyncScheduler, ScriptedScheduler


def pt_fsync_engine(algorithm, n, positions, adversary=None, **kw):
    """PT semantics with everyone active (a legal SSYNC schedule)."""
    return build_engine(
        algorithm, ring_size=n, positions=positions,
        adversary=adversary or NoRemoval(),
        scheduler=FsyncScheduler(), transport=TransportModel.PT, **kw,
    )


class TestLegBookkeeping:
    def test_left_steps_captures_the_first_leg(self):
        """Agent 1 walks into blocked agent 0; leftSteps = its whole run."""
        n = 8
        engine = pt_fsync_engine(
            PTBoundWithChirality(bound=n), n, [3, 6],
            adversary=FixedMissingEdge(2),  # blocks 3 -> 2 (leftward)
        )
        for _ in range(6):
            engine.step()
        walker = engine.agents[1]
        assert walker.memory.vars["state"] in ("Bounce", "Reverse")
        # the walker covered 6 -> 3: three leftward steps before the catch
        assert walker.memory.vars["leftSteps"] == 3

    def test_right_steps_captures_the_bounce_leg(self):
        """Bounce right into a missing edge; rightSteps = that leg."""
        n = 8
        # Block edge 2 first (pins agent 0 at node 3; the walker catches it
        # at round 3 and bounces), then edge 6 from round 6 (stops the
        # walker's rightward bounce 4 -> 5 -> 6 as it tries 6 -> 7).
        class TwoPhase:
            def reset(self, engine):
                return None

            def choose_missing_edge(self, engine):
                return 2 if engine.round_no < 6 else 6

        engine = pt_fsync_engine(
            PTBoundWithChirality(bound=n), n, [3, 6], adversary=TwoPhase(),
        )
        for _ in range(14):
            if engine.agents[1].memory.vars.get("rightSteps") is not None:
                break
            engine.step()
        walker = engine.agents[1]
        assert walker.memory.vars["rightSteps"] == 3  # bounced 3 -> 6

    def test_crossing_test_terminates_the_catcher(self):
        """rightSteps >= leftSteps on a repeat catch => crossed => stop."""
        n = 6
        engine = pt_fsync_engine(
            PTBoundWithChirality(bound=n), n, [3, 4],
            adversary=FixedMissingEdge(5),  # pins agent 0 pushing 0 -> 5
        )
        result = engine.run(5_000)
        assert result.explored
        terminated = [a for a in result.agents if a.terminated]
        assert terminated
        # the sweeping walker is the terminating agent
        assert any(a.index == 1 for a in terminated)


class TestCheckDGrowth:
    def test_d_grows_strictly_across_legs_pt(self):
        """Drive a 3-agent PT run and watch d never shrink while alive."""
        from repro.adversary import RandomMissingEdge
        from repro.schedulers import RandomFairScheduler

        engine = build_engine(
            PTBoundNoChirality(bound=9), ring_size=9, positions=[0, 3, 6],
            chirality=False, flipped=(1,),
            adversary=RandomMissingEdge(seed=13),
            scheduler=RandomFairScheduler(seed=14),
            transport=TransportModel.PT,
        )
        last_d = {a.index: 0 for a in engine.agents}
        for _ in range(20_000):
            if engine.all_terminated:
                break
            engine.step()
            for agent in engine.agents:
                if agent.terminated:
                    continue
                d = agent.memory.vars["d"]
                assert d >= last_d[agent.index]
                last_d[agent.index] = d
        assert engine.exploration_complete

    def test_et_strict_checkd_tolerates_equal_legs(self):
        """In ET, an equal-length leg must NOT terminate (strict <)."""
        algo = ETExactSizeNoChirality(ring_size=9)

        class FakeCtx:
            def __init__(self):
                self.vars = {"d": 4}

        # PT (non-strict) would terminate on steps == d; ET must not.
        from repro.core.actions import TERMINATE

        assert algo._check_d(FakeCtx(), 4) is None
        assert FakeCtx().vars["d"] == 4
        assert algo._check_d(FakeCtx(), 3) is TERMINATE

        pt = PTBoundNoChirality(bound=9)
        assert pt._check_d(FakeCtx(), 4) is TERMINATE

    def test_checkd_ignores_unset_d(self):
        pt = PTBoundNoChirality(bound=9)

        class FakeCtx:
            vars = {"d": 0}

        assert pt._check_d(FakeCtx(), 5) is None
        assert FakeCtx.vars["d"] == 0  # only Reverse's preamble sets d first


class TestNoResetEsteps:
    def test_meeting_states_keep_the_step_counter(self):
        """MeetingR/B must not reset Esteps (ExploreNoResetEsteps)."""
        spec_by_name = {s.name: s for s in PTBoundNoChirality(bound=9).build_states()}
        assert spec_by_name["MeetingR"].keep_esteps
        assert spec_by_name["MeetingB"].keep_esteps
        assert not spec_by_name["Bounce"].keep_esteps
        assert not spec_by_name["Reverse"].keep_esteps

    def test_meeting_transition_preserves_esteps_live(self):
        """Two agents meet mid-leg: the mover's Esteps must survive."""
        n = 9
        engine = pt_fsync_engine(
            PTBoundNoChirality(bound=n), n, [0, 4, 4],
            chirality=False, flipped=(2,),
        )
        seen_meeting = False
        for _ in range(40):
            if engine.all_terminated:
                break
            before = {
                a.index: (a.memory.vars["state"], a.memory.Esteps)
                for a in engine.agents if not a.terminated
            }
            engine.step()
            for agent in engine.agents:
                if agent.index not in before or agent.terminated:
                    continue
                old_state, old_esteps = before[agent.index]
                new_state = agent.memory.vars["state"]
                if new_state.startswith("Meeting") and old_state != new_state:
                    seen_meeting = True
                    # Esteps kept (possibly +1 for this round's own move)
                    assert agent.memory.Esteps >= old_esteps
        # the co-located start makes a meeting overwhelmingly likely, but
        # the assertion above is what matters; do not require it happened
        del seen_meeting
