"""Theorems 18, 19, 20: the Eventual Transport algorithms."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.adversary import FixedMissingEdge, NoRemoval, RandomMissingEdge, Theorem19Adversary
from repro.algorithms.ssync import ETExactSizeNoChirality, ETUnconscious
from repro.analysis.checker import check_safety
from repro.core import TerminationMode, TransportModel
from repro.core.errors import ConfigurationError
from repro.api import build_engine

from ..helpers import et_engine

HORIZON = 80_000


class TestETUnconscious:
    @pytest.mark.parametrize("n", [3, 6, 10, 15])
    def test_explores_without_terminating(self, n):
        engine = et_engine(ETUnconscious(), n, [0, n // 2], seed=n)
        result = engine.run(HORIZON, stop_on_exploration=True)
        assert result.explored
        assert result.termination_mode() is TerminationMode.UNCONSCIOUS

    def test_static_ring(self):
        engine = et_engine(ETUnconscious(), 9, [2, 6], adversary=NoRemoval(), seed=0)
        result = engine.run(HORIZON, stop_on_exploration=True)
        assert result.explored

    def test_perpetual_missing_edge(self):
        engine = et_engine(
            ETUnconscious(), 8, [2, 5], adversary=FixedMissingEdge(0), seed=1
        )
        result = engine.run(HORIZON, stop_on_exploration=True)
        assert result.explored

    @settings(max_examples=20)
    @given(
        n=st.integers(min_value=3, max_value=12),
        gap=st.integers(min_value=0, max_value=11),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_property_explores(self, n, gap, seed):
        engine = et_engine(ETUnconscious(), n, [0, gap % n], seed=seed)
        result = engine.run(HORIZON, stop_on_exploration=True)
        assert result.explored
        assert not result.any_terminated


class TestETExactSize:
    def test_size_floor(self):
        with pytest.raises(ConfigurationError):
            ETExactSizeNoChirality(ring_size=2)

    def test_bound_is_n_minus_one(self):
        """Section 4.3.2: "N is set to n - 1"."""
        assert ETExactSizeNoChirality(ring_size=9).bound == 8

    def test_checkd_is_strict(self):
        assert ETExactSizeNoChirality(ring_size=9).strict_check

    @pytest.mark.parametrize("n", [4, 7, 10])
    def test_random_runs_partially_terminate(self, n):
        engine = et_engine(
            ETExactSizeNoChirality(ring_size=n), n, [0, n // 3, (2 * n) // 3],
            chirality=False, flipped=(1,), seed=n,
        )
        result = engine.run(HORIZON)
        assert check_safety(result) == []
        assert result.explored
        assert result.any_terminated

    def test_perpetual_missing_edge_third_agent_sweeps(self):
        """Theorem 20's proof scenario: two agents pinned at the missing
        edge's endpoints, the third walks n-1 steps and terminates."""
        n = 7
        engine = et_engine(
            ETExactSizeNoChirality(ring_size=n), n, [1, 3, 5],
            chirality=False, flipped=(2,),
            adversary=FixedMissingEdge(n - 1), seed=4,
        )
        result = engine.run(HORIZON)
        assert check_safety(result) == []
        assert result.explored
        assert result.any_terminated

    @settings(max_examples=15)
    @given(
        n=st.integers(min_value=4, max_value=10),
        seed=st.integers(min_value=0, max_value=2**16),
        flip=st.sampled_from([(), (1,), (0, 2)]),
    )
    def test_property_safe(self, n, seed, flip):
        positions = [0, n // 3, (2 * n) // 3]
        engine = et_engine(
            ETExactSizeNoChirality(ring_size=n), n, positions,
            chirality=False, flipped=flip, seed=seed,
        )
        result = engine.run(HORIZON)
        assert check_safety(result) == []
        assert result.explored
        assert result.any_terminated


class TestTheorem19:
    """Exact size knowledge is necessary: the two-ring indistinguishability."""

    def test_misused_bound_terminates_incorrectly_on_big_ring(self):
        n1, n2 = 6, 9
        adversary = Theorem19Adversary(small_size=n1)
        engine = build_engine(
            ETExactSizeNoChirality(ring_size=n1),
            ring_size=n2,
            positions=[0, 2, 4],
            chirality=False,
            flipped=(1,),
            adversary=adversary,
            scheduler=adversary,
            transport=TransportModel.ET,
        )
        result = engine.run(20_000)
        assert result.termination_mode() is TerminationMode.INCORRECT
        assert not result.explored

    def test_control_run_on_true_small_ring_is_correct(self):
        n1 = 6
        engine = et_engine(
            ETExactSizeNoChirality(ring_size=n1), n1, [0, 2, 4],
            chirality=False, flipped=(1,),
            adversary=FixedMissingEdge(n1 - 1), seed=4,
        )
        result = engine.run(20_000)
        assert check_safety(result) == []
        assert result.explored
        assert result.any_terminated

    def test_adversary_validates_configuration(self):
        adversary = Theorem19Adversary(small_size=6)
        with pytest.raises(ConfigurationError):
            build_engine(
                ETExactSizeNoChirality(ring_size=6),
                ring_size=6,  # host must be strictly larger
                positions=[0, 1, 2],
                adversary=adversary,
                scheduler=adversary,
                transport=TransportModel.ET,
            )
        with pytest.raises(ConfigurationError):
            build_engine(
                ETExactSizeNoChirality(ring_size=6),
                ring_size=9,
                positions=[0, 1, 7],  # outside the segment
                adversary=adversary,
                scheduler=adversary,
                transport=TransportModel.ET,
            )
        with pytest.raises(ConfigurationError):
            Theorem19Adversary(small_size=2)
