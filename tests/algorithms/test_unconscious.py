"""Theorem 5 / Figure 3: Unconscious Exploration.

Claims under test: two anonymous agents with no knowledge and no chirality
explore every 1-interval-connected ring in O(n) rounds, and (consistently
with Theorems 1/2) never terminate.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.adversary import (
    BlockAgentAdversary,
    FixedMissingEdge,
    MeetingPreventionAdversary,
    NoRemoval,
    RandomMissingEdge,
)
from repro.algorithms.fsync import UnconsciousExploration
from repro.core import TerminationMode

from ..helpers import fsync_engine

#: Generous constant for the O(n) claim; the proof's accounting gives
#: roughly 4n rounds to reach G >= n plus a few more phases.
LINEAR_HORIZON = 40


def horizon(n: int) -> int:
    return LINEAR_HORIZON * n


class TestExploration:
    @pytest.mark.parametrize("n", [3, 5, 8, 13, 21])
    def test_explores_without_terminating(self, n):
        engine = fsync_engine(UnconsciousExploration(), n, [0, n // 2])
        result = engine.run(horizon(n), stop_on_exploration=True)
        assert result.explored
        assert result.termination_mode() is TerminationMode.UNCONSCIOUS

    def test_same_start_same_orientation(self):
        engine = fsync_engine(UnconsciousExploration(), 9, [4, 4])
        result = engine.run(horizon(9), stop_on_exploration=True)
        assert result.explored

    def test_opposite_orientations(self):
        engine = fsync_engine(
            UnconsciousExploration(), 10, [2, 7], chirality=False, flipped=(1,)
        )
        result = engine.run(horizon(10), stop_on_exploration=True)
        assert result.explored

    @pytest.mark.parametrize("edge", [0, 4])
    def test_perpetually_missing_edge(self, edge):
        engine = fsync_engine(
            UnconsciousExploration(), 9, [1, 5], adversary=FixedMissingEdge(edge)
        )
        result = engine.run(horizon(9), stop_on_exploration=True)
        assert result.explored

    def test_meeting_prevention_does_not_stop_exploration(self):
        """Obs. 2 prevents meetings, not exploration (cf. Theorem 5's proof)."""
        engine = fsync_engine(
            UnconsciousExploration(), 9, [0, 4], adversary=MeetingPreventionAdversary()
        )
        result = engine.run(horizon(9), stop_on_exploration=True)
        assert result.explored

    @settings(max_examples=30)
    @given(
        n=st.integers(min_value=3, max_value=16),
        gap=st.integers(min_value=0, max_value=15),
        flip=st.sampled_from([(), (0,), (1,)]),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_random_adversary_linear_time(self, n, gap, flip, seed):
        engine = fsync_engine(
            UnconsciousExploration(),
            n,
            [0, gap % n],
            chirality=False,
            flipped=flip,
            adversary=RandomMissingEdge(seed=seed),
        )
        result = engine.run(horizon(n), stop_on_exploration=True)
        assert result.explored
        assert not result.any_terminated
        assert result.exploration_round is not None
        assert result.exploration_round <= horizon(n)


class TestGuessDoubling:
    def test_guess_doubles_in_keep_state(self):
        engine = fsync_engine(UnconsciousExploration(), 12, [0, 6])
        for _ in range(5):
            engine.step()
        # after Etime >= 2G with G=2 the agents entered Keep and doubled
        assert engine.agents[0].memory.vars["G"] == 4

    def test_blocked_agent_reverses_direction(self):
        engine = fsync_engine(
            UnconsciousExploration(), 12, [3], adversary=BlockAgentAdversary(0)
        )
        start_dir = None
        for _ in range(10):
            engine.step()
            current = engine.agents[0].memory.vars["dir"]
            if start_dir is None:
                start_dir = current
        # with G=2 and the first phase blocked, the agent must have reversed
        assert engine.agents[0].memory.vars["state"] in {"Reverse", "Keep", "Init"}
        assert engine.agents[0].memory.Tsteps == 0  # the blocker never lets it move

    def test_single_agent_cannot_explore(self):
        """Corollary 1, demonstrated against this algorithm."""
        engine = fsync_engine(
            UnconsciousExploration(), 8, [0], adversary=BlockAgentAdversary(0)
        )
        result = engine.run(800)
        assert not result.explored
        assert len(result.visited) == 1
        assert result.total_moves == 0
