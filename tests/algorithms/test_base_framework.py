"""The Explore-DSL driver: transitions, preambles, counters, guards."""

import pytest

from repro.adversary import FixedMissingEdge
from repro.algorithms.base import (
    Ctx,
    LEFT,
    RIGHT,
    StateMachineAlgorithm,
    StateSpec,
    TERMINAL,
    rules,
)
from repro.core import STAY, TERMINATE, move
from repro.core.errors import ProtocolViolation
from repro.core.memory import AgentMemory
from repro.core.snapshot import Snapshot


def plain_snapshot(**kw) -> Snapshot:
    defaults = dict(
        on_port=None,
        others_in_node=0,
        other_on_left_port=False,
        other_on_right_port=False,
        is_landmark=False,
        moved=False,
        failed=False,
    )
    defaults.update(kw)
    return Snapshot(**defaults)


class TwoState(StateMachineAlgorithm):
    """Init walks left until Ttime >= 3, then Final walks right forever."""

    name = "two-state"

    def build_states(self):
        return [
            StateSpec(
                name="Init",
                direction=LEFT,
                rules=rules((lambda ctx: ctx.Ttime >= 3, "Final")),
            ),
            StateSpec(name="Final", direction=RIGHT),
        ]


class TestDriverBasics:
    def test_setup_initializes_state(self):
        memory = AgentMemory()
        TwoState().setup(memory)
        assert memory.vars["state"] == "Init"

    def test_moves_in_state_direction(self):
        memory = AgentMemory()
        algo = TwoState()
        algo.setup(memory)
        assert algo.compute(plain_snapshot(), memory) == move(LEFT)

    def test_transition_fires_and_is_processed_same_round(self):
        memory = AgentMemory()
        algo = TwoState()
        algo.setup(memory)
        memory.Ttime = 5
        assert algo.compute(plain_snapshot(), memory) == move(RIGHT)
        assert memory.vars["state"] == "Final"

    def test_transition_resets_explore_counters(self):
        memory = AgentMemory()
        algo = TwoState()
        algo.setup(memory)
        memory.Ttime = 5
        memory.Etime = 9
        memory.Esteps = 4
        algo.compute(plain_snapshot(), memory)
        assert memory.Etime == 0
        assert memory.Esteps == 0

    def test_terminal_state_returns_terminate_forever(self):
        class Quits(StateMachineAlgorithm):
            name = "quits"

            def build_states(self):
                return [
                    StateSpec(
                        name="Init",
                        direction=LEFT,
                        rules=rules((lambda ctx: True, TERMINAL)),
                    )
                ]

        memory = AgentMemory()
        algo = Quits()
        algo.setup(memory)
        assert algo.compute(plain_snapshot(), memory) is TERMINATE
        assert algo.compute(plain_snapshot(), memory) is TERMINATE


class TestPreambles:
    def test_on_enter_runs_once_with_old_counters(self):
        captured = []

        class Capture(StateMachineAlgorithm):
            name = "capture"

            def build_states(self):
                def enter(ctx):
                    captured.append((ctx.Etime, ctx.Esteps))

                return [
                    StateSpec(
                        name="Init",
                        direction=LEFT,
                        rules=rules((lambda ctx: ctx.Ttime >= 1, "Next")),
                    ),
                    StateSpec(name="Next", direction=RIGHT, on_enter=enter),
                ]

        memory = AgentMemory()
        algo = Capture()
        algo.setup(memory)
        algo.compute(plain_snapshot(), memory)  # stays in Init
        memory.Ttime, memory.Etime, memory.Esteps = 1, 4, 2
        algo.compute(plain_snapshot(), memory)  # transition: preamble sees 4, 2
        algo.compute(plain_snapshot(), memory)  # no re-run
        assert captured == [(4, 2)]

    def test_on_enter_may_redirect(self):
        class Redirect(StateMachineAlgorithm):
            name = "redirect"

            def build_states(self):
                return [
                    StateSpec(
                        name="Init",
                        direction=LEFT,
                        rules=rules((lambda ctx: True, "Hop")),
                    ),
                    StateSpec(name="Hop", direction=LEFT, on_enter=lambda ctx: "End"),
                    StateSpec(name="End", direction=RIGHT),
                ]

        memory = AgentMemory()
        algo = Redirect()
        algo.setup(memory)
        assert algo.compute(plain_snapshot(), memory) == move(RIGHT)
        assert memory.vars["state"] == "End"

    def test_on_enter_may_terminate(self):
        class EnterQuit(StateMachineAlgorithm):
            name = "enter-quit"

            def build_states(self):
                return [
                    StateSpec(
                        name="Init",
                        direction=LEFT,
                        rules=rules((lambda ctx: True, "Quit")),
                    ),
                    StateSpec(name="Quit", direction=LEFT, on_enter=lambda ctx: TERMINATE),
                ]

        memory = AgentMemory()
        algo = EnterQuit()
        algo.setup(memory)
        assert algo.compute(plain_snapshot(), memory) is TERMINATE
        assert memory.vars["state"] == TERMINAL

    def test_keep_esteps_state(self):
        class NoReset(StateMachineAlgorithm):
            name = "no-reset"

            def build_states(self):
                return [
                    StateSpec(
                        name="Init",
                        direction=LEFT,
                        rules=rules((lambda ctx: ctx.Ttime >= 1, "Keep")),
                    ),
                    StateSpec(name="Keep", direction=LEFT, keep_esteps=True),
                ]

        memory = AgentMemory()
        algo = NoReset()
        algo.setup(memory)
        algo.compute(plain_snapshot(), memory)
        memory.Ttime, memory.Etime, memory.Esteps = 1, 5, 3
        algo.compute(plain_snapshot(), memory)
        assert memory.Esteps == 3  # survives ExploreNoResetEsteps
        assert memory.Etime == 0


class TestGuards:
    def test_preamble_redirect_loop_raises(self):
        class Loop(StateMachineAlgorithm):
            name = "loop"

            def build_states(self):
                return [
                    StateSpec(name="Init", direction=LEFT, on_enter=lambda ctx: "Other"),
                    StateSpec(name="Other", direction=LEFT, on_enter=lambda ctx: "Init"),
                ]

        memory = AgentMemory()
        algo = Loop()
        algo.setup(memory)
        with pytest.raises(ProtocolViolation):
            algo.compute(plain_snapshot(), memory)

    def test_rule_transitions_skip_new_state_guards_for_one_round(self):
        """A rule-fired transition cannot re-fire off the same snapshot."""

        class PingPong(StateMachineAlgorithm):
            name = "ping-pong"

            def build_states(self):
                always = rules((lambda ctx: True, "Pong"))
                back = rules((lambda ctx: True, "Ping"))
                return [
                    StateSpec(name="Init", direction=LEFT,
                              rules=rules((lambda ctx: True, "Ping"))),
                    StateSpec(name="Ping", direction=LEFT, rules=always),
                    StateSpec(name="Pong", direction=RIGHT, rules=back),
                ]

        memory = AgentMemory()
        algo = PingPong()
        algo.setup(memory)
        # Round 0: Init's rule fires, Ping entered, guard deferred: move left.
        assert algo.compute(plain_snapshot(), memory) == move(LEFT)
        assert memory.vars["state"] == "Ping"
        # Round 1: Ping's guard now fires, Pong entered: move right.
        assert algo.compute(plain_snapshot(), memory) == move(RIGHT)
        assert memory.vars["state"] == "Pong"

    def test_unknown_target_rejected_at_build(self):
        class Broken(StateMachineAlgorithm):
            name = "broken"

            def build_states(self):
                return [
                    StateSpec(name="Init", direction=LEFT,
                              rules=rules((lambda ctx: True, "Nowhere"))),
                ]

        with pytest.raises(ValueError):
            Broken()

    def test_duplicate_state_rejected(self):
        class Duped(StateMachineAlgorithm):
            name = "duped"

            def build_states(self):
                return [
                    StateSpec(name="Init", direction=LEFT),
                    StateSpec(name="Init", direction=RIGHT),
                ]

        with pytest.raises(ValueError):
            Duped()

    def test_state_needs_direction_or_custom(self):
        with pytest.raises(ValueError):
            StateSpec(name="bad")

    def test_state_cannot_mix_custom_and_rules(self):
        with pytest.raises(ValueError):
            StateSpec(
                name="bad",
                custom=lambda ctx: STAY,
                rules=rules((lambda ctx: True, "X")),
            )


class TestCtx:
    def test_effective_btime_is_capped_by_etime(self):
        memory = AgentMemory()
        memory.Btime = 7
        memory.Etime = 2
        ctx = Ctx(plain_snapshot(), memory)
        assert ctx.Btime == 2

    def test_size_is_infinite_until_known(self):
        memory = AgentMemory()
        ctx = Ctx(plain_snapshot(), memory)
        assert ctx.size == float("inf")
        assert not ctx.size_known
        assert not (ctx.Ntime > 2 * ctx.size)  # "all tests using it fail"
        memory.size = 9
        assert ctx.size == 9
        assert ctx.size_known

    def test_catches_requires_direction(self):
        memory = AgentMemory()
        ctx = Ctx(plain_snapshot(other_on_left_port=True), memory)
        assert not ctx.catches  # no direction resolved yet
        ctx.direction = LEFT
        assert ctx.catches

    def test_predicate_passthroughs(self):
        memory = AgentMemory()
        snap = plain_snapshot(others_in_node=2, is_landmark=True, failed=True)
        ctx = Ctx(snap, memory)
        assert ctx.meeting
        assert ctx.is_landmark
        assert ctx.failed
        assert ctx.others_in_node == 2


class TestCustomStates:
    def test_custom_state_drives_multiround_script(self):
        class Dance(StateMachineAlgorithm):
            name = "dance"

            def build_states(self):
                def script(ctx):
                    step = ctx.vars.setdefault("step", 0)
                    ctx.vars["step"] = step + 1
                    if step == 0:
                        return STAY
                    if step == 1:
                        return move(LEFT)
                    return TERMINATE

                return [StateSpec(name="Init", custom=script)]

        memory = AgentMemory()
        algo = Dance()
        algo.setup(memory)
        assert algo.compute(plain_snapshot(), memory) is STAY
        assert algo.compute(plain_snapshot(), memory) == move(LEFT)
        assert algo.compute(plain_snapshot(), memory) is TERMINATE
