"""Theorem 3 / Figure 1: KnownNNoChirality.

Claims under test: with a known upper bound ``N >= n``, two anonymous
agents — regardless of orientations, starting nodes and (1-interval)
adversary — explore the ring and explicitly terminate at round ``3N - 6``,
and never terminate before exploration is complete.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.adversary import (
    BlockAgentAdversary,
    Figure2Schedule,
    FixedMissingEdge,
    NoRemoval,
    PeriodicMissingEdge,
    RandomMissingEdge,
)
from repro.algorithms.fsync import KnownUpperBound
from repro.analysis.checker import check_safety
from repro.core import TerminationMode
from repro.core.errors import ConfigurationError
from repro.theory.bounds import fsync_known_bound_time

from ..helpers import fsync_engine


class TestConstruction:
    def test_bound_floor(self):
        with pytest.raises(ConfigurationError):
            KnownUpperBound(bound=2)

    def test_name_mentions_bound(self):
        assert "N=9" in KnownUpperBound(bound=9).name


class TestBenignRuns:
    @pytest.mark.parametrize("n", [3, 4, 5, 8, 13, 20])
    def test_explores_and_terminates_with_exact_bound(self, n):
        engine = fsync_engine(KnownUpperBound(bound=n), n, [0, n // 2])
        result = engine.run(fsync_known_bound_time(n) + 5)
        assert result.explored
        assert result.termination_mode() is TerminationMode.EXPLICIT
        assert result.last_termination_round == fsync_known_bound_time(n)

    @pytest.mark.parametrize("n,bound", [(5, 8), (6, 10), (9, 20)])
    def test_loose_upper_bound_still_works(self, n, bound):
        engine = fsync_engine(KnownUpperBound(bound=bound), n, [1, 3])
        result = engine.run(fsync_known_bound_time(bound) + 5)
        assert result.explored
        assert result.termination_mode() is TerminationMode.EXPLICIT

    def test_same_start_same_orientation(self):
        """Both push the same port; `failed` breaks the symmetry (proof, case 1)."""
        n = 8
        engine = fsync_engine(KnownUpperBound(bound=n), n, [2, 2])
        result = engine.run(fsync_known_bound_time(n) + 5)
        assert result.explored
        assert result.termination_mode() is TerminationMode.EXPLICIT

    def test_same_start_opposite_orientations(self):
        n = 8
        engine = fsync_engine(
            KnownUpperBound(bound=n), n, [2, 2], chirality=False, flipped=(1,)
        )
        result = engine.run(fsync_known_bound_time(n) + 5)
        assert result.explored
        assert result.termination_mode() is TerminationMode.EXPLICIT

    def test_adjacent_starts_opposite_orientations(self):
        """Proof case (i): neighbours facing each other explore in one round."""
        n = 8
        engine = fsync_engine(
            KnownUpperBound(bound=n), n, [2, 3], chirality=False, flipped=(0,)
        )
        result = engine.run(fsync_known_bound_time(n) + 5)
        assert result.explored
        assert result.termination_mode() is TerminationMode.EXPLICIT


class TestAdversarialRuns:
    @pytest.mark.parametrize("edge", [0, 3, 5])
    def test_one_edge_perpetually_missing(self, edge):
        n = 7
        engine = fsync_engine(
            KnownUpperBound(bound=n), n, [0, 4], adversary=FixedMissingEdge(edge)
        )
        result = engine.run(fsync_known_bound_time(n) + 5)
        assert result.explored
        assert result.termination_mode() is TerminationMode.EXPLICIT

    def test_blocking_one_agent_leaves_the_other_to_finish(self):
        n = 9
        engine = fsync_engine(
            KnownUpperBound(bound=n), n, [0, 4], adversary=BlockAgentAdversary(0)
        )
        result = engine.run(fsync_known_bound_time(n) + 5)
        assert result.explored

    @settings(max_examples=30)
    @given(
        n=st.integers(min_value=3, max_value=14),
        slack=st.integers(min_value=0, max_value=6),
        gap=st.integers(min_value=0, max_value=13),
        flip=st.sampled_from([(), (0,), (1,), (0, 1)]),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_random_adversary_never_defeats_it(self, n, slack, gap, flip, seed):
        """Safety + liveness hold for arbitrary sizes, starts, orientations."""
        bound = n + slack
        engine = fsync_engine(
            KnownUpperBound(bound=bound),
            n,
            [0, gap % n],
            chirality=False,
            flipped=flip,
            adversary=RandomMissingEdge(seed=seed),
        )
        result = engine.run(fsync_known_bound_time(bound) + 5)
        assert check_safety(result) == []
        assert result.explored
        assert result.all_terminated
        assert result.last_termination_round == fsync_known_bound_time(bound)

    @settings(max_examples=20)
    @given(
        n=st.integers(min_value=4, max_value=12),
        period=st.integers(min_value=2, max_value=6),
        duty=st.integers(min_value=1, max_value=6),
        edge=st.integers(min_value=0, max_value=11),
    )
    def test_periodic_adversary(self, n, period, duty, edge):
        duty = min(duty, period)
        engine = fsync_engine(
            KnownUpperBound(bound=n),
            n,
            [1, n - 1],
            adversary=PeriodicMissingEdge(edge % n, period, duty),
        )
        result = engine.run(fsync_known_bound_time(n) + 5)
        assert check_safety(result) == []
        assert result.explored


class TestFigure2WorstCase:
    @pytest.mark.parametrize("n", [5, 6, 9, 12, 17])
    def test_exploration_takes_exactly_3n_minus_6(self, n):
        schedule = Figure2Schedule(anchor=2)
        cfg = schedule.configuration(n)
        engine = fsync_engine(
            KnownUpperBound(bound=n),
            n,
            cfg["positions"],
            orientations=cfg["orientations"],
            adversary=cfg["adversary"],
        )
        result = engine.run(fsync_known_bound_time(n) + 5)
        assert result.exploration_round == 3 * n - 6
        assert result.termination_mode() is TerminationMode.EXPLICIT

    def test_schedule_needs_n_at_least_5(self):
        with pytest.raises(ConfigurationError):
            Figure2Schedule().configuration(4)

    def test_worst_case_beats_observation_3_lower_bound(self):
        """Obs. 3: any two-agent exploration needs >= 2n - 3 rounds."""
        n = 11
        assert 3 * n - 6 >= 2 * n - 3
