"""algorithms test package."""
