"""Section 3.2.3: ID computation and direction schedules.

Figures 9 and 10 are reproduced bit for bit; Figure 11's direction table
is asserted verbatim; Lemma 3 is checked as a property over random ID
pairs.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms.fsync.ids import (
    DirectionSchedule,
    common_direction_window,
    duplicate_bits,
    id_bit_length,
    interleave_id,
    lemma3_bound,
    phase_of_round,
)
from repro.core.directions import LEFT, RIGHT
from repro.core.errors import ConfigurationError


class TestInterleaving:
    def test_figure9_agent_a(self):
        """k1=010, k2=010, k3=000 -> 110000 (decimal 48)."""
        assert interleave_id(2, 2, 0) == 48

    def test_figure9_agent_b(self):
        """k1=011, k2=100, k3=000 -> 010100100 (decimal 164)."""
        assert interleave_id(3, 4, 0) == 164

    def test_figure10_agent_a(self):
        """k1=10, k2=01, k3=10 -> 101010 (decimal 42)."""
        assert interleave_id(2, 1, 2) == 42

    def test_figure10_agent_b(self):
        """k1=110, k2=010, k3=000 -> 100110000 (decimal 304)."""
        assert interleave_id(6, 2, 0) == 304

    def test_zero_id(self):
        assert interleave_id(0, 0, 0) == 0

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            interleave_id(-1, 0, 0)

    @given(st.integers(0, 500), st.integers(0, 500), st.integers(0, 500),
           st.integers(0, 500), st.integers(0, 500), st.integers(0, 500))
    def test_ids_equal_iff_components_equal(self, a1, a2, a3, b1, b2, b3):
        """"Note that two IDs are equal if and only if their ki's are equal.""" ""
        same = (a1, a2, a3) == (b1, b2, b3)
        assert (interleave_id(a1, a2, a3) == interleave_id(b1, b2, b3)) == same


class TestHelpers:
    def test_duplicate_bits_example(self):
        """Dup(1010, 2) = 11001100 (paper's own example)."""
        assert duplicate_bits("1010", 2) == "11001100"

    def test_duplicate_identity(self):
        assert duplicate_bits("10", 1) == "10"

    def test_duplicate_rejects_zero(self):
        with pytest.raises(ConfigurationError):
            duplicate_bits("10", 0)

    def test_phase_boundaries(self):
        assert phase_of_round(1) == 0
        assert phase_of_round(2) == 1
        assert phase_of_round(3) == 1
        assert phase_of_round(4) == 2
        assert phase_of_round(7) == 2
        assert phase_of_round(8) == 3

    def test_phase_rejects_round_zero(self):
        with pytest.raises(ConfigurationError):
            phase_of_round(0)

    @given(st.integers(1, 1 << 20))
    def test_phase_covers_rounds(self, r):
        j = phase_of_round(r)
        assert (1 << j) <= r < (1 << (j + 1))

    def test_id_bit_length(self):
        assert id_bit_length(0) == 1
        assert id_bit_length(1) == 1
        assert id_bit_length(48) == 6

    def test_lemma3_bound_formula(self):
        assert lemma3_bound(3, 5, 10) == 32 * ((3 + 3) * 5 * 10) + 1


class TestFigure11:
    """ID = 1: S(ID) = 1010, jbar = 2."""

    def test_pattern_and_jbar(self):
        sched = DirectionSchedule(1)
        assert sched.pattern == "1010"
        assert sched.jbar == 2

    def test_rounds_1_to_3_go_left(self):
        sched = DirectionSchedule(1)
        for r in (1, 2, 3):
            assert sched.direction(r) is LEFT

    def test_phase_two_matches_figure(self):
        """Rounds 4-7: directions 1 0 1 0."""
        sched = DirectionSchedule(1)
        got = [sched.direction(r) for r in range(4, 8)]
        assert got == [RIGHT, LEFT, RIGHT, LEFT]

    def test_phase_three_duplicates(self):
        """Rounds 8-15: directions 1 1 0 0 1 1 0 0."""
        sched = DirectionSchedule(1)
        got = [sched.direction(r) for r in range(8, 16)]
        expected = [RIGHT, RIGHT, LEFT, LEFT, RIGHT, RIGHT, LEFT, LEFT]
        assert got == expected

    def test_phase_pattern_accessor(self):
        sched = DirectionSchedule(1)
        assert sched.phase_pattern(2) == "1010"
        assert sched.phase_pattern(3) == "11001100"
        with pytest.raises(ConfigurationError):
            sched.phase_pattern(1)

    def test_switches(self):
        sched = DirectionSchedule(1)
        assert sched.switches(4)       # left -> right at the phase boundary
        assert sched.switches(5)       # right -> left inside the phase
        assert not sched.switches(9)   # right -> right (duplicated bits)
        assert not sched.switches(1)


class TestScheduleStructure:
    @given(st.integers(0, 4000))
    def test_pattern_is_padded_s_of_id(self, agent_id):
        sched = DirectionSchedule(agent_id)
        base = "10" + format(agent_id, "b") + "0"
        assert len(sched.pattern) == 1 << sched.jbar
        assert sched.pattern.endswith(base)
        assert set(sched.pattern[: -len(base)]) <= {"0"}

    @given(st.integers(0, 4000), st.integers(2, 9))
    def test_phase_pattern_length_matches_phase(self, agent_id, j):
        sched = DirectionSchedule(agent_id)
        j = max(j, sched.jbar)
        assert len(sched.phase_pattern(j)) == 1 << j

    @given(st.integers(0, 200))
    def test_every_schedule_uses_both_directions(self, agent_id):
        """Lemma 3's last statement: each S(ID) contains both 0 and 1."""
        sched = DirectionSchedule(agent_id)
        assert "0" in sched.pattern and "1" in sched.pattern


class TestLemma3:
    @pytest.mark.parametrize(
        "id_a,id_b",
        [(48, 164), (42, 304), (0, 1), (1, 2), (7, 8), (100, 101)],
    )
    def test_common_window_for_paper_pairs(self, id_a, id_b):
        """Distinct IDs share a direction for c*n rounds within the bound."""
        c, n = 1, 8
        a, b = DirectionSchedule(id_a), DirectionSchedule(id_b)
        longest = max(id_bit_length(id_a), id_bit_length(id_b))
        horizon = lemma3_bound(longest, c, n)
        _, length = common_direction_window(a, b, horizon)
        assert length >= c * n

    @settings(max_examples=25)
    @given(
        id_a=st.integers(0, 300),
        id_b=st.integers(0, 300),
        n=st.integers(3, 10),
    )
    def test_common_window_property(self, id_a, id_b, n):
        if id_a == id_b:
            return
        c = 1
        a, b = DirectionSchedule(id_a), DirectionSchedule(id_b)
        longest = max(id_bit_length(id_a), id_bit_length(id_b))
        horizon = lemma3_bound(longest, c, n)
        _, length = common_direction_window(a, b, horizon)
        assert length >= c * n

    @settings(max_examples=25)
    @given(id_a=st.integers(0, 300), n=st.integers(3, 8))
    def test_each_agent_runs_both_directions_long_enough(self, id_a, n):
        """Lemma 3: by the bound, each agent has a c*n run in each direction."""
        c = 1
        sched = DirectionSchedule(id_a)
        horizon = lemma3_bound(id_bit_length(id_a), c, n)
        runs = {LEFT: 0, RIGHT: 0}
        best = {LEFT: 0, RIGHT: 0}
        prev = None
        for r in range(1, horizon + 1):
            d = sched.direction(r)
            runs[d] = runs[d] + 1 if d is prev else 1
            if d is not prev and prev is not None:
                runs[prev] = 0
            best[d] = max(best[d], runs[d])
            prev = d
        assert best[LEFT] >= c * n
        assert best[RIGHT] >= c * n
