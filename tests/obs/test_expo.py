"""Exposition formats: human table, JSON summaries, Prometheus textfile."""

from repro.obs.expo import prom_name, prometheus_text, render_table, to_json

SNAPSHOT = {
    "executor.cells": {"type": "counter", "value": 12},
    "queue.depth": {"type": "gauge", "value": 3.0},
    "queue.claim_s": {"type": "histogram", "count": 4, "sum": 1.0,
                      "min": 0.1, "max": 0.4,
                      "sample": [0.1, 0.2, 0.3, 0.4]},
}


class TestRenderTable:
    def test_rows_per_kind(self):
        text = render_table(SNAPSHOT, title="t")
        assert text.splitlines()[0] == "== t"
        assert "executor.cells" in text and "counter" in text and "12" in text
        assert "queue.depth" in text and "gauge" in text
        assert "count=4" in text and "p50=" in text and "p99=" in text

    def test_empty_snapshot(self):
        assert "(no metrics recorded)" in render_table({})

    def test_fleet_section(self):
        text = render_table(SNAPSHOT, fleet={"batch.share": 0.5})
        assert "-- fleet --" in text
        assert "batch.share" in text

    def test_fleet_only_snapshot_not_reported_empty(self):
        assert "(no metrics" not in render_table({}, fleet={"x": 1})


class TestToJson:
    def test_histograms_summarised(self):
        payload = to_json(SNAPSHOT, fleet={"batch.share": 1.0})
        hist = payload["metrics"]["queue.claim_s"]
        assert hist["count"] == 4
        assert "sample" not in hist          # reservoirs never leave the API
        assert hist["p50"] == 0.25
        assert payload["metrics"]["executor.cells"]["value"] == 12
        assert payload["fleet"] == {"batch.share": 1.0}


class TestPrometheus:
    def test_name_sanitisation(self):
        assert prom_name("queue.claim_s") == "repro_queue_claim_s"
        assert prom_name("a-b.c") == "repro_a_b_c"

    def test_exposition_shapes(self):
        text = prometheus_text(SNAPSHOT, labels={"campaign": "smoke"})
        assert '# TYPE repro_executor_cells_total counter' in text
        assert 'repro_executor_cells_total{campaign="smoke"} 12' in text
        assert '# TYPE repro_queue_depth gauge' in text
        assert '# TYPE repro_queue_claim_s summary' in text
        assert 'repro_queue_claim_s{campaign="smoke",quantile="0.5"}' in text
        assert 'repro_queue_claim_s_count{campaign="smoke"} 4' in text
        assert 'repro_queue_claim_s_sum{campaign="smoke"} 1' in text
        assert text.endswith("\n")

    def test_no_labels(self):
        text = prometheus_text({"c": {"type": "counter", "value": 1}})
        assert "repro_c_total 1" in text

    def test_label_value_escaping(self):
        text = prometheus_text({"c": {"type": "counter", "value": 1}},
                               labels={"tag": 'say "hi"'})
        assert 'tag="say \\"hi\\""' in text
