"""CLI observability: logging flags, the metrics verb, diff_stores.

Satellites of the observability PR: ``--quiet/--verbose/--log-json``
replace the old ``\\r`` progress ticker, ``campaign metrics`` exposes
the persisted fleet snapshots in three formats, and
``scripts/diff_stores.py`` must keep treating the trace correlation id
(``span_id``) as telemetry, not as a result.
"""

import importlib.util
import json
import logging
from pathlib import Path

import pytest

from repro.cli import main
from repro.obs import logs as obs_logs
from repro.obs import metrics as obs_metrics
from repro.obs import spans as obs_spans

SCRIPTS = Path(__file__).resolve().parents[2] / "scripts"


def load_script(name: str):
    spec = importlib.util.spec_from_file_location(name, SCRIPTS / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(autouse=True)
def obs_isolation(monkeypatch, tmp_path):
    """Each test runs with a clean env, cwd, registry, and logger tree."""
    monkeypatch.delenv("REPRO_METRICS", raising=False)
    monkeypatch.delenv("REPRO_PHASE_METRICS", raising=False)
    monkeypatch.delenv("REPRO_TRACE", raising=False)
    monkeypatch.delenv("REPRO_TRACE_JSONL", raising=False)
    monkeypatch.chdir(tmp_path)
    obs_metrics.configure(None)
    obs_metrics.reset()
    yield tmp_path
    obs_spans.close_recorder()
    obs_metrics.configure(None)
    obs_metrics.reset()
    root = logging.getLogger(obs_logs.ROOT)
    for handler in list(root.handlers):
        root.removeHandler(handler)
        handler.close()
    root.setLevel(logging.NOTSET)


RUN = ["campaign", "run", "--spec", "smoke", "--workers", "1", "--limit", "6"]


class TestProgressLogging:
    def test_progress_logged_at_info(self, capsys):
        assert main(RUN) == 0
        captured = capsys.readouterr()
        assert "executed=6" in captured.out
        assert "repro.cli" in captured.err
        assert "6/6 cells (100%)" in captured.err

    def test_quiet_suppresses_progress_keeps_results(self, capsys):
        assert main(["--quiet", *RUN]) == 0
        captured = capsys.readouterr()
        assert "executed=6" in captured.out           # results: stdout
        assert "cells (" not in captured.err          # progress: silenced

    def test_verbose_keeps_progress(self, capsys):
        assert main(["-v", *RUN]) == 0
        assert "6/6 cells (100%)" in capsys.readouterr().err

    def test_log_json_emits_parseable_lines(self, capsys):
        assert main(["--log-json", *RUN]) == 0
        lines = [json.loads(line)
                 for line in capsys.readouterr().err.splitlines() if line]
        assert lines, "expected at least one JSON log line"
        assert all(row["logger"].startswith("repro") for row in lines)
        assert any("cells (100%)" in row["msg"] for row in lines)

    def test_unknown_log_level_is_usage_error(self, capsys):
        assert main(["--log-level", "loud", "list"]) == 2
        assert "unknown log level" in capsys.readouterr().err


class TestMetricsVerb:
    STORE = "sqlite:m.db"

    def run_with_metrics(self):
        code = main([*RUN, "--limit", "4", "--metrics",
                     "--store", self.STORE])
        assert code == 0

    def test_run_prints_metrics_report(self, capsys):
        self.run_with_metrics()
        out = capsys.readouterr().out
        assert "== metrics — campaign smoke" in out
        assert "executor.cells" in out

    def test_table_format_reads_persisted_snapshot(self, capsys):
        self.run_with_metrics()
        capsys.readouterr()
        assert main(["campaign", "metrics", "--spec", "smoke",
                     "--store", self.STORE]) == 0
        out = capsys.readouterr().out
        assert "campaign smoke — metrics" in out
        assert "executor.cells" in out
        assert "metrics.snapshots" in out             # fleet section

    def test_json_format(self, capsys):
        self.run_with_metrics()
        capsys.readouterr()
        assert main(["campaign", "metrics", "--spec", "smoke",
                     "--store", self.STORE, "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["metrics"]["executor.cells"]["value"] == 4
        assert "sample" not in payload["metrics"].get(
            "executor.cell_s", {})

    def test_prom_format_and_out_file(self, capsys, tmp_path):
        self.run_with_metrics()
        capsys.readouterr()
        target = tmp_path / "repro.prom"
        assert main(["campaign", "metrics", "--spec", "smoke",
                     "--store", self.STORE, "--format", "prom",
                     "--out", str(target)]) == 0
        assert capsys.readouterr().out == ""          # report went to --out
        text = target.read_text()
        assert 'repro_executor_cells_total{campaign="smoke"} 4' in text
        assert "# TYPE repro_batch_width summary" in text

    def test_missing_store_fails_cleanly_trace_profile_too(self, capsys):
        for verb in ("trace", "profile"):
            code = main(["campaign", verb, "--spec", "smoke",
                         "--store", "sqlite:absent.db"])
            assert code == 1
            assert "no result store" in capsys.readouterr().err

    def test_missing_store_fails_cleanly(self, capsys):
        code = main(["campaign", "metrics", "--spec", "smoke",
                     "--store", "sqlite:absent.db"])
        captured = capsys.readouterr()
        assert code == 1
        assert "no result store" in captured.err


class TestTraceVerb:
    STORE = "sqlite:t.db"

    def seed_trace(self, *, trace=True):
        assert main(["campaign", "enqueue", "--spec", "smoke",
                     "--limit", "6", "--chunk-size", "3",
                     "--store", self.STORE]) == 0
        worker = ["campaign", "worker", "--campaign", "smoke",
                  "--store", self.STORE, "--worker-id", "w-test"]
        if trace:
            worker += ["--trace", "--trace-jsonl", "spans.jsonl"]
        assert main(worker) == 0
        obs_spans.close_recorder()

    def test_tree_is_default(self, capsys):
        self.seed_trace()
        capsys.readouterr()
        assert main(["campaign", "trace", "--spec", "smoke",
                     "--store", self.STORE]) == 0
        out = capsys.readouterr().out
        assert "campaign smoke" in out
        assert "chunk chunk[3]" in out

    def test_timeline(self, capsys):
        self.seed_trace()
        capsys.readouterr()
        assert main(["campaign", "trace", "--spec", "smoke",
                     "--store", self.STORE, "--timeline"]) == 0
        out = capsys.readouterr().out
        assert "timeline:" in out and "w-test" in out and "█" in out

    def test_critical_path_json_attribution(self, capsys):
        self.seed_trace()
        capsys.readouterr()
        assert main(["campaign", "trace", "--spec", "smoke",
                     "--store", self.STORE, "--critical-path",
                     "--format", "json"]) == 0
        data = json.loads(capsys.readouterr().out)
        cp = data["critical_path"]
        buckets = (cp["queue_wait_s"] + cp["claim_s"]
                   + cp["execute_s"] + cp["commit_s"])
        assert buckets == pytest.approx(cp["session_s"], rel=1e-3)
        assert cp["coverage"] >= 0.9
        assert cp["path"][0]["kind"] == "campaign"

    def test_chrome_export(self, capsys, tmp_path):
        self.seed_trace()
        capsys.readouterr()
        target = tmp_path / "trace.json"
        assert main(["campaign", "trace", "--spec", "smoke",
                     "--store", self.STORE, "--format", "chrome",
                     "--out", str(target)]) == 0
        doc = json.loads(target.read_text())
        assert doc["displayTimeUnit"] == "ms"
        events = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert events and all(e["dur"] >= 1 for e in events)

    def test_jsonl_source(self, capsys):
        self.seed_trace()
        capsys.readouterr()
        assert main(["campaign", "trace", "--spec", "smoke",
                     "--jsonl", "spans.jsonl", "--stragglers"]) == 0
        assert "stragglers over" in capsys.readouterr().out

    def test_no_spans_recorded_is_an_error(self, capsys):
        self.seed_trace(trace=False)
        capsys.readouterr()
        assert main(["campaign", "trace", "--spec", "smoke",
                     "--store", self.STORE]) == 1
        assert "no spans recorded" in capsys.readouterr().err


class TestProfileVerb:
    STORE = "sqlite:p.db"

    def seed_metrics(self, *, batch="auto"):
        assert main([*RUN, "--limit", "6", "--metrics",
                     "--batch", batch, "--store", self.STORE]) == 0

    def test_table_output(self, capsys):
        self.seed_metrics(batch="off")
        capsys.readouterr()
        assert main(["campaign", "profile", "--spec", "smoke",
                     "--store", self.STORE]) == 0
        out = capsys.readouterr().out
        assert "campaign smoke — profile" in out
        assert "engine phases" in out
        assert "scalar" in out

    def test_json_routes(self, capsys):
        self.seed_metrics()
        capsys.readouterr()
        assert main(["campaign", "profile", "--spec", "smoke",
                     "--store", self.STORE, "--format", "json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["routes"], "expected at least one execution route"
        assert sum(r["cells"] for r in data["routes"]) == 6

    def test_folded_stacks_output(self, capsys, tmp_path):
        self.seed_metrics()
        capsys.readouterr()
        target = tmp_path / "profile.folded"
        assert main(["campaign", "profile", "--spec", "smoke",
                     "--store", self.STORE, "--format", "folded",
                     "--out", str(target)]) == 0
        lines = target.read_text().strip().splitlines()
        assert lines
        for line in lines:
            frames, weight = line.rsplit(" ", 1)
            assert frames.startswith("campaign;")
            assert int(weight) > 0


class TestBenchVerb:
    def bench_file(self, rps):
        path = Path("BENCH_engine.json")
        path.write_text(json.dumps(
            {"mode": "smoke",
             "headline": {"speedup": 8.0,
                          "optimized": {"rounds_per_s": rps}}}))
        return path

    def test_record_and_check_roundtrip(self, capsys):
        self.bench_file(20000.0)
        assert main(["bench", "record", "--sha", "aaa"]) == 0
        assert main(["bench", "record", "--sha", "bbb"]) == 0
        assert main(["bench", "check"]) == 0
        out = capsys.readouterr().out
        assert "recorded aaa" in out and "bench history ok" in out

    def test_check_fails_on_regression(self, capsys):
        self.bench_file(20000.0)
        assert main(["bench", "record", "--sha", "aaa"]) == 0
        assert main(["bench", "record", "--sha", "bbb"]) == 0
        self.bench_file(9000.0)
        assert main(["bench", "record", "--sha", "ccc"]) == 0
        assert main(["bench", "check"]) == 1
        assert "bench regression" in capsys.readouterr().err


class TestDiffStoresIgnoresTelemetry:
    def make_stores(self, tmp_path, mutate=None):
        from repro.campaigns.stores import open_store

        base = [
            {"key": "cell-0", "config": {"ring_size": 8, "seed": 0},
             "rounds": 41, "explored": True,
             "elapsed_s": 0.5, "span_id": "aaaa000011112222"},
            {"key": "cell-1", "config": {"ring_size": 8, "seed": 1},
             "rounds": 44, "explored": True, "elapsed_s": 0.7},
        ]
        other = [dict(r) for r in base]
        other[0].update(elapsed_s=9.9, span_id="ffff000011112222")
        del other[1]["elapsed_s"]
        if mutate:
            mutate(other)
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        open_store(f"jsonl:{a}").append_many(base)
        open_store(f"jsonl:{b}").append_many(other)
        return f"jsonl:{a}", f"jsonl:{b}"

    def test_span_id_declared_telemetry(self):
        diff = load_script("diff_stores")
        assert {"elapsed_s", "span_id"} <= set(diff.IGNORED_FIELDS)

    def test_stores_equal_modulo_telemetry(self, tmp_path, capsys):
        diff = load_script("diff_stores")
        a, b = self.make_stores(tmp_path)
        assert diff.main([a, b]) == 0
        assert "stores identical: 2 records" in capsys.readouterr().out

    def test_real_result_difference_still_detected(self, tmp_path, capsys):
        diff = load_script("diff_stores")

        def corrupt(records):
            records[0]["rounds"] = 999

        a, b = self.make_stores(tmp_path, mutate=corrupt)
        assert diff.main([a, b]) == 1
        assert "record differs for cell-0" in capsys.readouterr().err
