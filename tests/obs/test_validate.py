"""Span-trace validation rules (the importable check_spans logic)."""

from __future__ import annotations

import json

from repro.obs.spans import SPAN_SCHEMA
from repro.obs.validate import check_span_records, check_spans


def span(span_id="s1", *, kind="campaign", parent=None, **overrides):
    base = {
        "schema": SPAN_SCHEMA, "span_id": span_id, "parent_id": parent,
        "kind": kind, "name": "x", "start_s": 100.0, "elapsed_s": 1.0,
        "status": "ok", "attrs": {},
    }
    base.update(overrides)
    return base


def valid_trace():
    return [
        span("a", kind="campaign"),
        span("b", kind="chunk", parent="a"),
        span("c", kind="cell", parent="b"),
    ]


class TestRecords:
    def test_valid_trace_passes(self):
        assert check_span_records(
            valid_trace(), require_kinds=("campaign", "chunk", "cell")) == []

    def test_missing_keys(self):
        bad = span("a")
        del bad["attrs"]
        problems = check_span_records([bad])
        assert problems == ["span 1: missing keys ['attrs']"]

    def test_vocabulary_and_value_checks(self):
        problems = check_span_records([
            span("a", schema=99),
            span("b", kind="galaxy"),
            span("c", status="meh"),
            span("d", elapsed_s=-1.0),
            span("e", start_s=0),
            span("f", attrs=[]),
        ])
        assert len(problems) == 6
        assert any("schema" in p for p in problems)
        assert any("unknown kind 'galaxy'" in p for p in problems)
        assert any("unknown status 'meh'" in p for p in problems)
        assert any("bad elapsed_s" in p for p in problems)
        assert any("bad start_s" in p for p in problems)
        assert any("attrs is not an object" in p for p in problems)

    def test_duplicate_span_id(self):
        problems = check_span_records([span("a"), span("a")])
        assert any("duplicate span_id 'a'" in p for p in problems)

    def test_parent_kind_hierarchy(self):
        # a cell hanging directly off a campaign is a broken tree
        problems = check_span_records([
            span("a", kind="campaign"),
            span("c", kind="cell", parent="a"),
        ])
        assert any("expected chunk" in p for p in problems)

    def test_dangling_parent_is_not_an_error(self):
        # fleets split traces across sinks: an absent parent is fine
        assert check_span_records(
            [span("b", kind="chunk", parent="elsewhere")]) == []

    def test_require_kinds(self):
        problems = check_span_records(
            [span("a")], require_kinds=("campaign", "cell"))
        assert problems == ["no 'cell' span in the trace"]

    def test_labelled_records(self):
        problems = check_span_records([("line 7", span("a", schema=0))])
        assert problems[0].startswith("span line 7:")


class TestFile:
    def test_valid_file(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        path.write_text(
            "\n".join(json.dumps(s) for s in valid_trace()) + "\n\n")
        assert check_spans(path, require_kinds=("campaign",)) == []

    def test_line_numbers_in_problems(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        path.write_text("not json\n" + json.dumps(span("a", schema=0)) + "\n")
        problems = check_spans(path)
        assert any(p.startswith("line 1: not JSON") for p in problems)
        assert any(p.startswith("line 2: schema") for p in problems)
