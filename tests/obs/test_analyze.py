"""Trace analytics: tree building, timeline, critical path, stragglers,
Chrome export, and the shared straggler-hint helper."""

from __future__ import annotations

import json

import pytest

from repro.campaigns.distributed.queue import LeaseInfo
from repro.core.errors import ConfigurationError
from repro.obs.analyze import (
    build_tree,
    chrome_trace,
    critical_path,
    load_spans,
    median,
    render_critical_path,
    render_stragglers,
    render_timeline,
    render_tree,
    straggler_hint,
    stragglers,
)

_SEQ = [0]


def span(kind, name, start, elapsed, *, parent=None, worker="w1",
         host="h1", status="ok", **attrs):
    _SEQ[0] += 1
    return {
        "schema": 1, "span_id": f"s{_SEQ[0]:04d}", "parent_id": parent,
        "kind": kind, "name": name, "campaign": "camp", "worker": worker,
        "host": host, "start_s": start, "elapsed_s": elapsed,
        "status": status, "attrs": attrs,
    }


def fleet_trace():
    """Two worker sessions, three chunks, with claim/commit attrs."""
    s1 = span("campaign", "camp", 100.0, 10.0, worker="w1")
    c1 = span("chunk", "chunk[4]", 101.0, 4.0, parent=s1["span_id"],
              worker="w1", chunk_id=1, claim_s=0.5, commit_s=0.5)
    c2 = span("chunk", "chunk[4]", 106.0, 3.0, parent=s1["span_id"],
              worker="w1", chunk_id=2, claim_s=0.25, commit_s=0.25)
    cell = span("cell", "algo", 102.0, 3.0, parent=c1["span_id"],
                worker="w1", route="batch")
    s2 = span("campaign", "camp", 100.0, 8.0, worker="w2")
    c3 = span("chunk", "chunk[4]", 102.0, 6.0, parent=s2["span_id"],
              worker="w2", chunk_id=3, claim_s=1.0, commit_s=1.0,
              stolen_from="w-dead")
    return [s1, c1, c2, cell, s2, c3]


class TestLoadAndTree:
    def test_load_spans_from_jsonl(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        spans = fleet_trace()
        path.write_text(
            "\n".join(json.dumps(s) for s in reversed(spans)) + "\n")
        loaded = load_spans(path)
        assert len(loaded) == len(spans)
        # sorted by start regardless of file order
        assert [s["start_s"] for s in loaded] == sorted(
            s["start_s"] for s in spans)

    def test_load_spans_missing_file_raises(self, tmp_path):
        with pytest.raises(ConfigurationError, match="no span trace"):
            load_spans(tmp_path / "nope.jsonl")

    def test_load_spans_campaign_filter(self):
        spans = fleet_trace()
        other = span("campaign", "other", 0.0, 1.0)
        other["campaign"] = "other"
        assert len(load_spans(spans + [other], campaign="camp")) == len(spans)

    def test_build_tree_roots_and_orphans(self):
        spans = fleet_trace()
        roots = build_tree(spans)
        assert [r.kind for r in roots] == ["campaign", "campaign"]
        assert len(roots[0].children) == 2          # w1's chunks
        # orphan (parent not in the set) roots its own subtree
        orphan = span("chunk", "chunk[1]", 50.0, 1.0, parent="gone")
        roots = build_tree(spans + [orphan])
        assert any(r.kind == "chunk" for r in roots)

    def test_render_tree_collapses_cells(self):
        chunk = span("chunk", "chunk[9]", 0.0, 9.0)
        cells = [span("cell", f"algo{i}", float(i), 1.0,
                      parent=chunk["span_id"], route="scalar")
                 for i in range(9)]
        text = render_tree([chunk] + cells, max_cells=4)
        assert "... 5 more cells (5 scalar)" in text
        assert text.count("cell algo") == 4

    def test_render_tree_marks_errors(self):
        text = render_tree([span("cell", "boom", 0.0, 1.0, status="error")])
        assert "STATUS=error" in text


class TestTimeline:
    def test_one_lane_per_session(self):
        text = render_timeline(fleet_trace())
        assert "2 lane(s)" in text
        assert "w1" in text and "w2" in text
        assert "█" in text and "·" in text

    def test_empty(self):
        assert render_timeline([]) == "(no spans)"


class TestCriticalPath:
    def test_attribution_sums_to_session_time(self):
        analysis = critical_path(fleet_trace())
        total = (analysis["queue_wait_s"] + analysis["claim_s"]
                 + analysis["execute_s"] + analysis["commit_s"])
        assert total == pytest.approx(analysis["session_s"], rel=1e-6)
        assert analysis["attributed_s"] == pytest.approx(total, rel=1e-6)
        assert analysis["coverage"] == pytest.approx(1.0)
        # w1: 10s session, 7s in chunks -> 3s queue-wait; w2: 8s, 6s -> 2s
        assert analysis["queue_wait_s"] == pytest.approx(5.0)
        assert analysis["claim_s"] == pytest.approx(1.75)
        assert analysis["commit_s"] == pytest.approx(1.75)
        assert analysis["wall_clock_s"] == pytest.approx(10.0)

    def test_longest_chain_follows_dominant_child(self):
        analysis = critical_path(fleet_trace())
        # latest-ending lane is w1 (ends at 110); dominant chunk is chunk 1
        kinds = [hop["kind"] for hop in analysis["path"]]
        assert kinds == ["campaign", "chunk", "cell"]
        assert analysis["path"][1]["chunk_id"] == 1
        assert analysis["path"][0]["share"] == pytest.approx(1.0)

    def test_stolen_chunk_carried_on_path(self):
        s = span("campaign", "camp", 0.0, 5.0)
        c = span("chunk", "chunk[2]", 0.0, 5.0, parent=s["span_id"],
                 chunk_id=7, stolen_from="w-dead")
        analysis = critical_path([s, c])
        assert analysis["path"][1]["stolen_from"] == "w-dead"

    def test_render_smoke(self):
        text = render_critical_path(critical_path(fleet_trace()))
        assert "queue-wait" in text and "coverage" in text
        assert "longest chain" in text

    def test_empty_trace(self):
        analysis = critical_path([])
        assert analysis["coverage"] is None
        assert analysis["path"] == []


class TestStragglers:
    def test_flags_slow_chunk_and_steal(self):
        spans = fleet_trace()
        ranking = stragglers(spans, threshold=1.5)
        # chunk 3 (6s) vs median 4s -> 1.5x: at threshold, not over
        by_id = {r["chunk_id"]: r for r in ranking["top_chunks"]}
        assert not by_id[3]["straggler"]
        assert by_id[3]["stolen_from"] == "w-dead"
        ranking = stragglers(spans, threshold=1.2)
        assert {r["chunk_id"]: r["straggler"]
                for r in ranking["top_chunks"]}[3]
        text = render_stragglers(ranking)
        assert "stolen from w-dead" in text

    def test_no_chunks(self):
        ranking = stragglers([span("campaign", "camp", 0.0, 1.0)])
        assert ranking["median_chunk_s"] is None
        assert "no timed chunk spans" in render_stragglers(ranking)


class TestChromeTrace:
    def test_schema_and_ids(self):
        spans = fleet_trace()
        doc = chrome_trace(spans)
        events = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert len(events) == len(spans)
        assert all(isinstance(e["ts"], int) and isinstance(e["dur"], int)
                   and e["dur"] >= 1 for e in events)
        assert min(e["ts"] for e in events) == 0
        # one pid for the single host, one tid per worker, named via M
        assert {e["pid"] for e in events} == {1}
        assert {e["tid"] for e in events} == {1, 2}
        names = {(e["name"], e["args"]["name"]) for e in meta}
        assert ("process_name", "h1") in names
        assert ("thread_name", "w1") in names and ("thread_name", "w2") in names
        json.dumps(doc)  # must be JSON-serialisable as-is

    def test_open_spans_dropped_and_zero_dur_clamped(self):
        open_span = span("chunk", "open", 0.0, 1.0)
        open_span["elapsed_s"] = None
        doc = chrome_trace([open_span, span("cell", "instant", 0.0, 0.0)])
        events = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(events) == 1 and events[0]["dur"] == 1

    def test_empty(self):
        assert chrome_trace([]) == {"traceEvents": [],
                                    "displayTimeUnit": "ms"}


class TestStragglerHint:
    def lease(self, chunk_id, age, *, now=1000.0, worker="w9"):
        return LeaseInfo(chunk_id=chunk_id, worker_id=worker,
                         acquired_at=now - age, heartbeat=now,
                         attempt=1, n_cells=4)

    def test_quiet_when_within_threshold(self):
        assert straggler_hint([self.lease(1, 3.0)], [2.0, 2.0],
                              now=1000.0) is None

    def test_flags_slowest_lease(self):
        hint = straggler_hint(
            [self.lease(1, 1.0), self.lease(2, 9.0, worker="w-slow")],
            [2.0, 2.0, 2.0], now=1000.0)
        assert hint is not None
        assert "chunk 2" in hint and "w-slow" in hint
        assert "x4.5" in hint

    def test_needs_baseline_and_leases(self):
        assert straggler_hint([], [2.0], now=0.0) is None
        assert straggler_hint([self.lease(1, 9.0)], [], now=1000.0) is None


class TestMedian:
    def test_odd_even_empty(self):
        assert median([3.0, 1.0, 2.0]) == 2.0
        assert median([1.0, 2.0, 3.0, 4.0]) == 2.5
        assert median([]) is None
