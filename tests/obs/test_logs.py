"""The logging backbone: logger tree, level resolution, formats."""

import io
import json
import logging

import pytest

from repro.obs import logs


@pytest.fixture(autouse=True)
def restore_root():
    yield
    root = logging.getLogger(logs.ROOT)
    for handler in list(root.handlers):
        root.removeHandler(handler)
        handler.close()
    root.setLevel(logging.NOTSET)


class TestGetLogger:
    def test_prefixes_under_repro(self):
        assert logs.get_logger("cli").name == "repro.cli"
        assert logs.get_logger("repro.core.sim").name == "repro.core.sim"
        assert logs.get_logger().name == "repro"


class TestResolveLevel:
    def test_precedence_and_defaults(self):
        assert logs.resolve_level() == logging.INFO
        assert logs.resolve_level(quiet=True) == logging.WARNING
        assert logs.resolve_level(verbose=True) == logging.DEBUG
        # explicit level beats both switches
        assert logs.resolve_level("debug", quiet=True) == logging.DEBUG
        assert logs.resolve_level("ERROR", verbose=True) == logging.ERROR

    def test_unknown_level_raises(self):
        with pytest.raises(ValueError, match="unknown log level"):
            logs.resolve_level("loud")


class TestConfigure:
    def test_single_handler_text_format(self):
        stream = io.StringIO()
        logs.configure(logging.INFO, stream=stream)
        logs.configure(logging.INFO, stream=stream)   # idempotent: one handler
        root = logging.getLogger(logs.ROOT)
        assert len(root.handlers) == 1
        assert root.propagate is False
        logs.get_logger("cli").info("hello %d", 7)
        assert stream.getvalue() == "I repro.cli: hello 7\n"

    def test_level_filters(self):
        stream = io.StringIO()
        logs.configure(logging.WARNING, stream=stream)
        logs.get_logger("x").info("suppressed")
        logs.get_logger("x").warning("kept")
        assert "suppressed" not in stream.getvalue()
        assert "kept" in stream.getvalue()

    def test_json_lines(self):
        stream = io.StringIO()
        logs.configure("debug", json_lines=True, stream=stream)
        try:
            raise RuntimeError("boom")
        except RuntimeError:
            logs.get_logger("worker").error("failed", exc_info=True)
        payload = json.loads(stream.getvalue())
        assert payload["level"] == "error"
        assert payload["logger"] == "repro.worker"
        assert payload["msg"] == "failed"
        assert "RuntimeError: boom" in payload["exc"]
        assert isinstance(payload["ts"], float)
