"""Span tracing: recorder hierarchy, sinks, env gating, store persistence."""

import json

import pytest

from repro.obs import spans as obs_spans
from repro.obs.spans import (
    JsonlSpanSink,
    SpanRecorder,
    StoreSpanSink,
    ensure_recorder,
)


@pytest.fixture(autouse=True)
def clean_recorder(monkeypatch):
    monkeypatch.delenv("REPRO_TRACE", raising=False)
    monkeypatch.delenv("REPRO_TRACE_JSONL", raising=False)
    obs_spans.install(None)
    yield
    obs_spans.install(None)


def collecting_recorder(**kwargs):
    emitted = []
    rec = SpanRecorder([emitted.append], host="testhost", **kwargs)
    return rec, emitted


class TestRecorder:
    def test_nested_spans_parent_by_stack(self):
        rec, emitted = collecting_recorder(campaign="camp", worker="w1")
        with rec.span("campaign", "camp") as root:
            with rec.span("chunk", "chunk[2]") as chunk:
                with rec.span("cell", "algo"):
                    pass
        # spans emit on close: innermost first
        cell, chunk_span, campaign = emitted
        assert campaign["parent_id"] is None
        assert chunk_span["parent_id"] == root.span_id
        assert cell["parent_id"] == chunk.span_id
        assert [s["kind"] for s in emitted] == ["cell", "chunk", "campaign"]
        assert all(s["campaign"] == "camp" and s["worker"] == "w1"
                   and s["host"] == "testhost" for s in emitted)
        assert all(s["elapsed_s"] >= 0 for s in emitted)

    def test_explicit_parent_id_wins(self):
        rec, emitted = collecting_recorder()
        with rec.span("campaign", "camp"):
            with rec.span("chunk", "c", parent_id="remote-parent"):
                pass
        assert emitted[0]["parent_id"] == "remote-parent"

    def test_exception_marks_error_status(self):
        rec, emitted = collecting_recorder()
        with pytest.raises(ValueError):
            with rec.span("cell", "boom"):
                raise ValueError("nope")
        assert emitted[0]["status"] == "error"
        assert emitted[0]["attrs"]["error"] == "ValueError"

    def test_attrs_mutable_through_handle(self):
        rec, emitted = collecting_recorder()
        with rec.span("chunk", "c", cells=4) as span:
            span.attrs["batched"] = 4
        assert emitted[0]["attrs"] == {"cells": 4, "batched": 4}

    def test_emit_direct_closed_span(self):
        rec, emitted = collecting_recorder()
        with rec.span("chunk", "c") as chunk:
            span_id = rec.emit("cell", "algo", elapsed_s=0.25,
                               attrs={"route": "batch"})
        assert emitted[0]["span_id"] == span_id
        assert emitted[0]["parent_id"] == chunk.span_id
        assert emitted[0]["elapsed_s"] == 0.25


class TestSinks:
    def test_jsonl_sink_round_trips(self, tmp_path):
        path = tmp_path / "sub" / "spans.jsonl"
        sink = JsonlSpanSink(str(path))
        rec = SpanRecorder([sink], campaign="c")
        with rec.span("campaign", "c"):
            pass
        rec.close()
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(rows) == 1
        assert rows[0]["kind"] == "campaign"
        assert rows[0]["schema"] == obs_spans.SPAN_SCHEMA

    def test_store_sink_requires_append_spans(self):
        with pytest.raises(TypeError, match="append_spans"):
            StoreSpanSink(object())

    def test_store_sink_buffers_until_flush(self):
        class FakeStore:
            def __init__(self):
                self.batches = []

            def append_spans(self, spans):
                self.batches.append(list(spans))

        store = FakeStore()
        sink = StoreSpanSink(store, max_buffer=3)
        for i in range(2):
            sink({"span_id": str(i)})
        assert store.batches == []
        sink({"span_id": "2"})          # hits max_buffer: self-flush
        assert len(store.batches) == 1 and len(store.batches[0]) == 3
        sink({"span_id": "3"})
        sink.flush()
        assert len(store.batches) == 2

    def test_sqlite_store_persists_and_reads_back(self, tmp_path):
        from repro.campaigns.stores import open_store

        store = open_store(f"sqlite:{tmp_path/'s.db'}", campaign="camp")
        sink = StoreSpanSink(store)
        rec = SpanRecorder([sink], campaign="camp", worker="w1")
        with rec.span("campaign", "camp"):
            with rec.span("chunk", "chunk[1]", chunk_id=7):
                rec.emit("cell", "algo", attrs={"route": "batch"})
        rec.close()
        spans = store.spans()
        assert [s["kind"] for s in spans] == ["campaign", "chunk", "cell"]
        by_id = {s["span_id"]: s for s in spans}
        chunk = next(s for s in spans if s["kind"] == "chunk")
        assert by_id[chunk["parent_id"]]["kind"] == "campaign"
        assert chunk["attrs"] == {"chunk_id": 7}
        assert all(s["worker"] == "w1" for s in spans)
        assert store.spans(kind="cell")[0]["attrs"]["route"] == "batch"
        # idempotent re-append (INSERT OR IGNORE on span_id)
        store.append_spans(
            [dict(s, attrs={}, campaign="camp") for s in spans[:1]])
        assert len(store.spans()) == 3


class TestEnsureRecorder:
    def test_disabled_without_env(self):
        assert ensure_recorder() is None
        assert not obs_spans.tracing_requested()

    def test_jsonl_env_builds_recorder(self, tmp_path, monkeypatch):
        path = tmp_path / "spans.jsonl"
        monkeypatch.setenv("REPRO_TRACE_JSONL", str(path))
        rec = ensure_recorder(campaign="c", worker="w")
        assert rec is not None and obs_spans.tracing_requested()
        assert ensure_recorder() is rec          # installed once per process
        with rec.span("campaign", "c"):
            pass
        obs_spans.flush()
        assert path.exists()
        obs_spans.close_recorder()
        assert obs_spans.recorder() is None

    def test_store_env_needs_capable_store(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "1")
        assert ensure_recorder(store=object()) is None
        from repro.campaigns.stores import open_store

        store = open_store(f"sqlite:{tmp_path/'s.db'}", campaign="c")
        rec = ensure_recorder(store=store, campaign="c")
        assert rec is not None

    def test_existing_recorder_backfills_identity(self, tmp_path,
                                                  monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_JSONL", str(tmp_path / "s.jsonl"))
        rec = ensure_recorder()
        assert rec.campaign == "" and rec.worker == ""
        assert ensure_recorder(campaign="camp", worker="w9") is rec
        assert rec.campaign == "camp" and rec.worker == "w9"
