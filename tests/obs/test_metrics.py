"""The metrics registry: instruments, snapshots, merging, env gating."""

import threading

import pytest

from repro.obs import metrics
from repro.obs.metrics import (
    SAMPLE_CAP,
    MetricsRegistry,
    PhaseTimer,
    merge_snapshots,
    summarize_histogram,
)


@pytest.fixture(autouse=True)
def clean_state(monkeypatch):
    """Every test starts env-gated-off with a fresh global registry."""
    monkeypatch.delenv("REPRO_METRICS", raising=False)
    monkeypatch.delenv("REPRO_PHASE_METRICS", raising=False)
    metrics.configure(enabled=None, phase_timing=None)
    metrics.reset()
    yield
    metrics.configure(enabled=None, phase_timing=None)
    metrics.reset()


class TestInstruments:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.counter("c").inc(4)
        assert reg.counter("c").value == 5
        assert reg.snapshot()["c"] == {"type": "counter", "value": 5}

    def test_gauge_last_wins(self):
        reg = MetricsRegistry()
        reg.gauge("g").set(1.0)
        reg.gauge("g").set(7.5)
        assert reg.snapshot()["g"] == {"type": "gauge", "value": 7.5}

    def test_histogram_exact_count_sum_min_max(self):
        reg = MetricsRegistry()
        h = reg.histogram("h")
        for v in (3.0, 1.0, 2.0):
            h.observe(v)
        dump = h.dump()
        assert dump["count"] == 3
        assert dump["sum"] == 6.0
        assert dump["min"] == 1.0 and dump["max"] == 3.0
        assert sorted(dump["sample"]) == [1.0, 2.0, 3.0]

    def test_histogram_percentiles_interpolate(self):
        reg = MetricsRegistry()
        h = reg.histogram("h")
        for v in range(1, 101):
            h.observe(float(v))
        assert h.percentile(50) == pytest.approx(50.5)
        assert h.percentile(99) == pytest.approx(99.01)
        assert h.percentile(0) == 1.0
        assert h.percentile(100) == 100.0

    def test_histogram_reservoir_bounded_count_exact(self):
        reg = MetricsRegistry()
        h = reg.histogram("h")
        n = SAMPLE_CAP * 3
        for v in range(n):
            h.observe(float(v))
        dump = h.dump()
        assert dump["count"] == n
        assert len(dump["sample"]) == SAMPLE_CAP
        # the reservoir stays representative: median within 10% of truth
        assert h.percentile(50) == pytest.approx(n / 2, rel=0.10)

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError, match="already registered"):
            reg.histogram("x")

    def test_threaded_increments_do_not_lose_updates(self):
        reg = MetricsRegistry()

        def work():
            for _ in range(1000):
                reg.counter("n").inc()
                reg.histogram("h").observe(1.0)

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.counter("n").value == 4000
        assert reg.histogram("h").count == 4000


class TestMerge:
    def test_counters_sum_and_gauges_last_win(self):
        a = {"c": {"type": "counter", "value": 2},
             "g": {"type": "gauge", "value": 1.0}}
        b = {"c": {"type": "counter", "value": 3},
             "g": {"type": "gauge", "value": 9.0}}
        merged = merge_snapshots([a, b])
        assert merged["c"]["value"] == 5
        assert merged["g"]["value"] == 9.0

    def test_histograms_pool_reservoirs(self):
        def hist(values):
            return {"type": "histogram", "count": len(values),
                    "sum": sum(values), "min": min(values),
                    "max": max(values), "sample": list(values)}

        merged = merge_snapshots([
            {"h": hist([1.0, 2.0])},
            {"h": hist([10.0, 20.0])},
        ])["h"]
        assert merged["count"] == 4
        assert merged["sum"] == 33.0
        assert merged["min"] == 1.0 and merged["max"] == 20.0
        assert sorted(merged["sample"]) == [1.0, 2.0, 10.0, 20.0]
        summary = summarize_histogram(merged)
        assert summary["mean"] == pytest.approx(8.25)
        assert summary["p50"] == pytest.approx(6.0)

    def test_merged_reservoir_thinned_deterministically(self):
        big = {"type": "histogram", "count": SAMPLE_CAP * 2,
               "sum": 0.0, "min": 0.0, "max": 1.0,
               "sample": [float(i) for i in range(SAMPLE_CAP * 2)]}
        merged = merge_snapshots([{"h": big}, {"h": dict(big)}])["h"]
        assert len(merged["sample"]) == SAMPLE_CAP
        assert merged["count"] == SAMPLE_CAP * 4
        again = merge_snapshots([{"h": big}, {"h": dict(big)}])["h"]
        assert merged["sample"] == again["sample"]

    def test_empty_and_missing_snapshots_skipped(self):
        assert merge_snapshots([{}, None, {"c": {"type": "counter",
                                                 "value": 1}}])["c"]["value"] == 1

    def test_empty_reservoir_histogram_merges(self):
        # a worker can snapshot a histogram before observing anything:
        # count 0, no sample, min/max None must not poison the pool
        empty = {"type": "histogram", "count": 0, "sum": 0.0,
                 "min": None, "max": None, "sample": []}
        full = {"type": "histogram", "count": 2, "sum": 3.0,
                "min": 1.0, "max": 2.0, "sample": [1.0, 2.0]}
        for order in ([empty, full], [full, empty]):
            merged = merge_snapshots([{"h": a} for a in order])["h"]
            assert merged["count"] == 2
            assert merged["min"] == 1.0 and merged["max"] == 2.0
            assert sorted(merged["sample"]) == [1.0, 2.0]
        both = merge_snapshots([{"h": empty}, {"h": dict(empty)}])["h"]
        assert both["count"] == 0 and both["min"] is None
        summary = summarize_histogram(both)
        assert summary["mean"] is None and summary["p50"] is None

    def test_disabled_registry_snapshot_merges_cleanly(self):
        # a fleet mixes --metrics and plain workers: the disabled ones
        # persist {} (null instruments dump nothing) and must vanish
        disabled = MetricsRegistry(enabled=False)
        disabled.counter("c").inc()
        disabled.histogram("h").observe(1.0)
        assert disabled.snapshot() == {}
        enabled = MetricsRegistry()
        enabled.counter("c").inc(3)
        merged = merge_snapshots([disabled.snapshot(), enabled.snapshot(),
                                  disabled.snapshot()])
        assert merged["c"]["value"] == 3

    def test_single_sample_percentiles_collapse_to_value(self):
        reg = MetricsRegistry()
        reg.histogram("h").observe(7.0)
        merged = merge_snapshots([reg.snapshot()])
        summary = summarize_histogram(merged["h"])
        assert summary["count"] == 1
        assert summary["p50"] == summary["p90"] == summary["p99"] == 7.0
        assert summary["mean"] == 7.0
        assert summary["min"] == summary["max"] == 7.0

    def test_conflicting_types_keep_first(self):
        merged = merge_snapshots([
            {"m": {"type": "counter", "value": 2}},
            {"m": {"type": "histogram", "count": 1, "sum": 1.0,
                   "min": 1.0, "max": 1.0, "sample": [1.0]}},
            {"m": {"type": "counter", "value": 5}},
        ])
        assert merged["m"]["type"] == "counter"
        assert merged["m"]["value"] == 7


class TestGlobalGate:
    def test_disabled_by_default_and_null_registry_is_free(self):
        assert not metrics.enabled()
        reg = metrics.registry()
        # unconditional call-site pattern: never raises, records nothing
        reg.counter("x").inc()
        reg.histogram("y").observe(1.0)
        reg.gauge("z").set(2.0)
        assert metrics.snapshot() == {}

    def test_env_enables(self, monkeypatch):
        monkeypatch.setenv("REPRO_METRICS", "1")
        assert metrics.enabled()
        metrics.registry().counter("x").inc()
        assert metrics.snapshot()["x"]["value"] == 1

    def test_configure_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_METRICS", "1")
        metrics.configure(enabled=False)
        assert not metrics.enabled()
        metrics.configure(enabled=None)
        assert metrics.enabled()

    def test_reset_clears_recorded_values(self):
        metrics.configure(enabled=True)
        metrics.registry().counter("x").inc()
        metrics.reset()
        assert metrics.snapshot() == {}

    def test_phase_timing_follows_metrics_unless_vetoed(self, monkeypatch):
        assert not metrics.phase_timing_enabled()
        monkeypatch.setenv("REPRO_METRICS", "1")
        assert metrics.phase_timing_enabled()
        assert isinstance(metrics.phase_timer(), PhaseTimer)
        monkeypatch.setenv("REPRO_PHASE_METRICS", "0")
        assert not metrics.phase_timing_enabled()
        assert metrics.phase_timer() is None


class TestPhaseTimer:
    def test_flush_records_histograms_and_zeroes(self):
        reg = MetricsRegistry()
        timer = PhaseTimer()
        timer.adversary = 0.5
        timer.look_compute = 1.0
        timer.rounds = 10
        timer.flush(reg)
        snap = reg.snapshot()
        assert snap["engine.phase.adversary_s"]["sum"] == 0.5
        assert snap["engine.phase.look_compute_s"]["sum"] == 1.0
        assert snap["engine.run_rounds"]["sum"] == 10.0
        assert snap["engine.runs"]["value"] == 1
        assert timer.adversary == 0.0 and timer.rounds == 0
