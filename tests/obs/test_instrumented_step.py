"""The instrumented round loop must be a perfect twin of the plain one.

``SimulationCore.set_instrument`` swaps ``step`` for
``_step_instrumented`` per instance — the disabled path stays
byte-identical to the pre-observability engine.  These tests pin the
other half of that contract: the *enabled* path must produce exactly
the same trajectory, round for round, on both the optimized and the
reference engines, across adversaries and transports.
"""

import pytest

from repro.campaigns.registry import build_cell_engine
from repro.campaigns.spec import CellConfig
from repro.obs.metrics import MetricsRegistry, PhaseTimer

CELLS = [
    CellConfig(algorithm="known-bound", ring_size=9, agents=2, seed=3,
               adversary="random", transport="ns", max_rounds=400),
    CellConfig(algorithm="known-bound", ring_size=8, agents=3, seed=1,
               adversary="ns-starvation", transport="ns", max_rounds=400),
    CellConfig(algorithm="pt-bound", ring_size=7, agents=2, seed=2,
               adversary="zigzag", transport="pt", max_rounds=600),
    CellConfig(algorithm="unconscious", ring_size=8, agents=4, seed=0,
               adversary="block-agent", transport="ns", max_rounds=200,
               stop_on_exploration=True),
]


def run_trajectory(cell: CellConfig, *, optimized: bool, instrument):
    """(positions, missing, explored) per round, plus the final engine."""
    engine = build_cell_engine(cell, optimized=optimized)
    engine.set_instrument(instrument)
    states = []
    for _ in range(cell.max_rounds):
        if not engine.step():      # no live agent: no round executed
            break
        states.append((
            tuple((a.index, a.node, a.port, a.terminated)
                  for a in engine.agents),
            engine.missing_edge,
            engine.exploration_complete,
        ))
        if cell.stop_on_exploration and engine.exploration_complete:
            break
    return states, engine


@pytest.mark.parametrize("optimized", [True, False],
                         ids=["optimized", "reference"])
@pytest.mark.parametrize("cell", CELLS,
                         ids=[c.algorithm + "/" + c.adversary for c in CELLS])
def test_instrumented_trajectory_identical(cell, optimized):
    plain, _ = run_trajectory(cell, optimized=optimized, instrument=None)
    timer = PhaseTimer()
    timed, _ = run_trajectory(cell, optimized=optimized, instrument=timer)
    assert timed == plain
    assert timer.rounds == len(plain)
    # wall-clock accumulated somewhere (phases are >= 0 by construction)
    assert timer.adversary >= 0.0 and timer.look_compute >= 0.0


def test_set_instrument_swaps_and_restores_step():
    engine = build_cell_engine(CELLS[0])
    assert "step" not in engine.__dict__          # class method: plain path
    timer = PhaseTimer()
    engine.set_instrument(timer)
    assert engine.__dict__["step"].__func__ is \
        type(engine)._step_instrumented
    assert engine.instrument is timer
    engine.set_instrument(None)
    assert "step" not in engine.__dict__          # detach restores the class
    assert engine.instrument is None
    assert engine.step()                          # and it still runs


def test_timer_flush_lands_phase_histograms():
    engine = build_cell_engine(CELLS[0])
    timer = PhaseTimer()
    engine.set_instrument(timer)
    for _ in range(50):
        if not engine.step():
            break
    reg = MetricsRegistry()
    timer.flush(reg)
    snap = reg.snapshot()
    for phase in PhaseTimer.PHASES:
        dump = snap[f"engine.phase.{phase}_s"]
        assert dump["count"] == 1
        assert dump["sum"] >= 0.0
    assert snap["engine.run_rounds"]["sum"] > 0
