"""Phase-attribution profiles: tables, folded stacks, rendering."""

from __future__ import annotations

from repro.obs.profile import (
    folded_stacks,
    phase_table,
    profile_data,
    render_profile,
    route_table,
)


def hist(values):
    return {"type": "histogram", "count": len(values), "sum": sum(values),
            "min": min(values), "max": max(values), "sample": list(values)}


def counter(value):
    return {"type": "counter", "value": value}


def snapshot():
    return {
        "engine.phase.adversary_s": hist([0.1, 0.1]),
        "engine.phase.look_compute_s": hist([0.5, 0.5]),
        "engine.phase.move_s": hist([0.2, 0.2]),
        "engine.phase.end_of_round_s": hist([0.2, 0.2]),
        "executor.cell_s": hist([1.1, 1.1]),
        "executor.cells_scalar": counter(2),
        "executor.cells_batched": counter(24),
        "batch.core_s": hist([0.4]),
        "engine.runs": counter(2),
    }


class TestPhaseTable:
    def test_shares_sum_to_one(self):
        rows = phase_table(snapshot())
        assert [r["phase"] for r in rows] == [
            "adversary", "look_compute", "move", "end_of_round"]
        assert sum(r["share"] for r in rows) == 1.0
        look = next(r for r in rows if r["phase"] == "look_compute")
        assert look["share"] == 0.5
        assert look["sum"] == 1.0

    def test_empty_snapshot(self):
        assert phase_table({}) == []

    def test_skips_absent_phases(self):
        rows = phase_table({"engine.phase.move_s": hist([1.0])})
        assert [r["phase"] for r in rows] == ["move"]
        assert rows[0]["share"] == 1.0


class TestRouteTable:
    def test_scalar_and_batch_rows(self):
        rows = route_table(snapshot())
        by_route = {r["route"]: r for r in rows}
        assert by_route["scalar"]["cells"] == 2
        assert by_route["scalar"]["seconds"] == 2.2
        assert by_route["batch"]["cells"] == 24
        assert by_route["batch"]["runs"] == 1
        assert sum(r["share"] for r in rows) == 1.0

    def test_batch_only(self):
        rows = route_table({"batch.core_s": hist([0.4]),
                            "executor.cells_batched": counter(24)})
        assert [r["route"] for r in rows] == ["batch"]


class TestFoldedStacks:
    def test_weights_are_integer_microseconds(self):
        lines = folded_stacks(snapshot()).splitlines()
        parsed = {}
        for line in lines:
            frames, weight = line.rsplit(" ", 1)
            parsed[frames] = int(weight)
        assert parsed["campaign;scalar;look_compute"] == 1_000_000
        # other = cell_s.sum (2.2) - phase sum (2.0)
        assert parsed["campaign;scalar;other"] == 200_000
        assert parsed["campaign;batch;BatchCore.run"] == 400_000

    def test_custom_root_and_empty(self):
        assert folded_stacks({}) == ""
        line = folded_stacks({"batch.core_s": hist([1.0])}, root="fleet")
        assert line.startswith("fleet;batch;")

    def test_no_negative_other_frame(self):
        # phases can exceed cell_s under reservoir thinning: clamp at 0
        text = folded_stacks({
            "engine.phase.move_s": hist([5.0]),
            "executor.cell_s": hist([1.0]),
        })
        assert "other" not in text


class TestRendering:
    def test_render_profile_tables(self):
        text = render_profile(snapshot(), title="t")
        assert text.startswith("== t")
        assert "look_compute" in text
        assert "scalar" in text and "batch" in text

    def test_render_profile_explains_missing_phases(self):
        text = render_profile({})
        assert "no engine.phase" in text

    def test_profile_data_shape(self):
        data = profile_data(snapshot())
        assert data["engine_runs"] == 2
        assert {r["route"] for r in data["routes"]} == {"scalar", "batch"}
        assert len(data["phases"]) == 4
