"""Bench-history record/check: the perf-regression guard."""

from __future__ import annotations

import json

import pytest

from repro.obs.history import (
    HEADLINES,
    check,
    extract_headlines,
    load_history,
    main,
    record,
)


def bench(rounds_per_s=20000.0, speedup=8.0, mode="smoke"):
    return {
        "mode": mode,
        "headline": {"speedup": speedup,
                     "optimized": {"rounds_per_s": rounds_per_s}},
        "batch": {"headline": {"speedup": 8.5,
                               "batched": {"cells_per_s": 300.0}}},
    }


def write_bench(tmp_path, name="bench.json", **kwargs):
    path = tmp_path / name
    path.write_text(json.dumps(bench(**kwargs)))
    return path


class TestExtract:
    def test_known_headlines_extracted(self):
        got = extract_headlines(bench())
        assert got["engine.rounds_per_s"] == 20000.0
        assert got["engine.speedup"] == 8.0
        assert got["batch.cells_per_s"] == 300.0
        assert set(got) < set(HEADLINES)

    def test_missing_sections_skipped(self):
        assert extract_headlines({"headline": {"speedup": 2.0}}) == {
            "engine.speedup": 2.0}
        assert extract_headlines({}) == {}

    def test_non_numeric_leaf_skipped(self):
        assert extract_headlines({"headline": {"speedup": "fast"}}) == {}


class TestRecord:
    def test_appends_entry(self, tmp_path):
        hist = tmp_path / "hist.jsonl"
        entry = record(write_bench(tmp_path), hist,
                       git_sha="abc123", now=100.0)
        assert entry["git_sha"] == "abc123"
        assert entry["mode"] == "smoke"
        assert entry["recorded_at"] == 100.0
        record(write_bench(tmp_path), hist, git_sha="def456", now=200.0)
        entries = load_history(hist)
        assert [e["git_sha"] for e in entries] == ["abc123", "def456"]

    def test_rejects_headline_free_file(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"hello": 1}))
        with pytest.raises(ValueError, match="none of the known headlines"):
            record(path, tmp_path / "hist.jsonl")


class TestCheck:
    def seed(self, tmp_path, values, name="hist.jsonl"):
        hist = tmp_path / name
        for i, rps in enumerate(values):
            record(write_bench(tmp_path, rounds_per_s=rps), hist,
                   git_sha=f"sha{i}", now=float(i))
        return hist

    def test_synthetic_2x_regression_fails(self, tmp_path):
        # the acceptance scenario: stable history, then a 2x slowdown
        hist = self.seed(tmp_path, [20000.0, 20000.0, 20000.0, 10000.0])
        problems = check(hist)
        assert len(problems) == 1
        assert "engine.rounds_per_s" in problems[0]
        assert "sha3" in problems[0]

    def test_noise_within_fraction_passes(self, tmp_path):
        hist = self.seed(tmp_path, [20000.0, 19000.0, 15000.0])
        assert check(hist) == []

    def test_short_history_always_passes(self, tmp_path):
        assert check(tmp_path / "missing.jsonl") == []
        hist = self.seed(tmp_path, [20000.0])
        assert check(hist) == []

    def test_window_limits_baseline(self, tmp_path):
        # ancient slow entries age out of the window: the recent fast
        # plateau is the baseline, so the final slow run fails
        hist = self.seed(tmp_path, [100.0, 100.0] + [20000.0] * 10 + [100.0])
        assert check(hist, window=10)
        # with a huge window the old slow entries drag the median...
        # still failing here (median of 12 entries is 20000), so pin the
        # converse: a tiny window that only sees the last slow-ish entry
        hist2 = self.seed(tmp_path, [20000.0, 90.0, 100.0], name="h2.jsonl")
        assert check(hist2, window=1) == []

    def test_fraction_validated(self, tmp_path):
        hist = self.seed(tmp_path, [1.0, 1.0])
        with pytest.raises(ValueError, match="fraction"):
            check(hist, fraction=0.0)
        with pytest.raises(ValueError, match="fraction"):
            check(hist, fraction=1.5)

    def test_headline_missing_from_baseline_ignored(self, tmp_path):
        hist = tmp_path / "hist.jsonl"
        path = tmp_path / "partial.json"
        path.write_text(json.dumps({"headline": {"speedup": 8.0}}))
        record(path, hist, git_sha="a", now=0.0)
        record(write_bench(tmp_path, rounds_per_s=100.0), hist,
               git_sha="b", now=1.0)
        # rounds_per_s has no trailing baseline; speedup is stable
        assert check(hist) == []


class TestCli:
    def test_record_then_check_roundtrip(self, tmp_path, capsys):
        bench_path = write_bench(tmp_path)
        hist = tmp_path / "hist.jsonl"
        assert main(["record", "--bench", str(bench_path),
                     "--history", str(hist), "--sha", "aaa"]) == 0
        assert main(["check", "--history", str(hist)]) == 0
        out = capsys.readouterr().out
        assert "recorded aaa" in out and "bench history ok" in out

    def test_check_exits_1_on_regression(self, tmp_path, capsys):
        hist = tmp_path / "hist.jsonl"
        for i, rps in enumerate([20000.0, 20000.0, 9000.0]):
            main(["record", "--bench",
                  str(write_bench(tmp_path, rounds_per_s=rps)),
                  "--history", str(hist), "--sha", f"s{i}"])
        assert main(["check", "--history", str(hist)]) == 1
        assert "bench regression" in capsys.readouterr().err

    def test_missing_files_exit_2(self, tmp_path):
        assert main(["record", "--bench", str(tmp_path / "no.json"),
                     "--history", str(tmp_path / "h.jsonl")]) == 2
        assert main(["check", "--history", str(tmp_path / "no.jsonl")]) == 2
