"""Runtime counter semantics (Section 3's bookkeeping variables)."""

from hypothesis import given, strategies as st

from repro.core.directions import LEFT, RIGHT
from repro.core.memory import AgentMemory


class TestTraversalAccounting:
    def test_right_move_increments_net(self):
        mem = AgentMemory()
        mem.record_traversal(RIGHT)
        assert mem.net == 1
        assert mem.Tsteps == mem.Esteps == 1
        assert mem.moved
        assert mem.Btime == 0

    def test_left_move_decrements_net(self):
        mem = AgentMemory()
        mem.record_traversal(LEFT)
        assert mem.net == -1

    def test_tnodes_is_the_edge_span(self):
        mem = AgentMemory()
        for _ in range(3):
            mem.record_traversal(RIGHT)
        for _ in range(5):
            mem.record_traversal(LEFT)
        # net went 0 -> +3 -> -2: span covers 5 edges
        assert mem.max_net == 3
        assert mem.min_net == -2
        assert mem.Tnodes == 5

    @given(st.lists(st.sampled_from([LEFT, RIGHT]), max_size=200))
    def test_tnodes_matches_reference_walk(self, walk):
        mem = AgentMemory()
        net, lo, hi = 0, 0, 0
        for step in walk:
            mem.record_traversal(step)
            net += 1 if step is RIGHT else -1
            lo, hi = min(lo, net), max(hi, net)
        assert mem.net == net
        assert mem.Tnodes == hi - lo

    def test_blocked_increments_btime_and_clears_moved(self):
        mem = AgentMemory()
        mem.record_traversal(RIGHT)
        mem.record_blocked()
        mem.record_blocked()
        assert mem.Btime == 2
        assert not mem.moved

    def test_move_resets_btime(self):
        mem = AgentMemory()
        mem.record_blocked()
        mem.record_traversal(LEFT)
        assert mem.Btime == 0


class TestClocks:
    def test_tick_advances_both_clocks(self):
        mem = AgentMemory()
        mem.tick()
        mem.tick()
        assert mem.Ttime == 2
        assert mem.Etime == 2

    def test_ntime_only_runs_after_size_known(self):
        mem = AgentMemory()
        mem.tick()
        assert mem.Ntime == 0
        mem.size = 7
        mem.tick()
        mem.tick()
        assert mem.Ntime == 2

    def test_reset_explore_clears_per_state_counters(self):
        mem = AgentMemory()
        mem.record_traversal(RIGHT)
        mem.tick()
        mem.reset_explore()
        assert mem.Etime == 0
        assert mem.Esteps == 0
        assert mem.Tsteps == 1  # protocol-wide counters survive
        assert mem.Ttime == 1

    def test_reset_explore_can_keep_esteps(self):
        """Figure 18's ExploreNoResetEsteps."""
        mem = AgentMemory()
        mem.record_traversal(RIGHT)
        mem.tick()
        mem.reset_explore(keep_esteps=True)
        assert mem.Etime == 0
        assert mem.Esteps == 1


class TestLandmarkTracking:
    def test_first_visit_records_reference_net(self):
        mem = AgentMemory()
        mem.record_traversal(RIGHT)
        mem.observe_landmark()
        assert mem.landmark_seen
        assert mem.landmark_first_net == 1
        assert mem.size is None

    def test_revisit_at_same_net_learns_nothing(self):
        mem = AgentMemory()
        mem.observe_landmark()
        mem.record_traversal(RIGHT)
        mem.record_traversal(LEFT)
        mem.observe_landmark()
        assert mem.size is None

    def test_full_loop_learns_the_size(self):
        mem = AgentMemory()
        mem.observe_landmark()
        for _ in range(6):
            mem.record_traversal(RIGHT)
        mem.observe_landmark()  # back at the landmark, net = +6
        assert mem.size == 6
        assert mem.size_known

    def test_loop_in_the_left_direction(self):
        mem = AgentMemory()
        mem.observe_landmark()
        for _ in range(5):
            mem.record_traversal(LEFT)
        mem.observe_landmark()
        assert mem.size == 5

    def test_size_is_learned_once(self):
        mem = AgentMemory()
        mem.observe_landmark()
        for _ in range(4):
            mem.record_traversal(RIGHT)
        mem.observe_landmark()
        for _ in range(4):
            mem.record_traversal(RIGHT)
        mem.observe_landmark()  # second loop must not overwrite
        assert mem.size == 4

    @given(st.integers(min_value=3, max_value=30))
    def test_loop_of_any_size(self, n):
        mem = AgentMemory()
        mem.record_traversal(RIGHT)  # start away from the landmark
        mem.observe_landmark()
        for _ in range(n):
            mem.record_traversal(RIGHT)
        mem.observe_landmark()
        assert mem.size == n


class TestClone:
    def _populated(self) -> AgentMemory:
        mem = AgentMemory()
        for _ in range(3):
            mem.record_traversal(RIGHT)
        mem.record_traversal(LEFT)
        mem.record_blocked()
        mem.tick()
        mem.observe_landmark()
        mem.vars.update({"state": "Explore", "G": 4, "dir": LEFT,
                         "nested": {"a": 1}, "steps": [1, 2]})
        return mem

    def test_clone_equals_original(self):
        mem = self._populated()
        clone = mem.clone()
        assert clone == mem
        assert clone is not mem and clone.vars is not mem.vars

    def test_scalar_mutations_do_not_leak_back(self):
        mem = self._populated()
        clone = mem.clone()
        clone.record_traversal(RIGHT)
        clone.tick()
        clone.vars["G"] = 99
        clone.vars["state"] = "Done"
        assert mem.Tsteps == 4 and mem.Ttime == 1
        assert mem.vars["G"] == 4 and mem.vars["state"] == "Explore"

    def test_one_level_containers_are_isolated(self):
        mem = self._populated()
        clone = mem.clone()
        clone.vars["nested"]["a"] = 2
        clone.vars["steps"].append(3)
        assert mem.vars["nested"] == {"a": 1}
        assert mem.vars["steps"] == [1, 2]

    def test_clone_matches_deepcopy(self):
        import copy

        mem = self._populated()
        assert mem.clone() == copy.deepcopy(mem)
