"""Metamorphic symmetry tests: the model has no privileged node or side.

Rotating every position (agents, landmark, adversary's edges) by the same
offset, or reflecting the whole configuration, must yield the *same*
execution up to the symmetry.  These invariances hold for the entire
simulation pipeline — snapshots, port mutual exclusion, counters — so they
catch any accidental dependence on absolute node indices or on a global
notion of left.
"""

from hypothesis import given, settings, strategies as st

from repro.algorithms.fsync import KnownUpperBound, LandmarkWithChirality
from repro.api import build_engine
from repro.core import CANONICAL, MIRRORED
from repro.core.interfaces import EdgeAdversary


class RotatedAdversary:
    """Rotate a deterministic base edge schedule by ``shift``."""

    def __init__(self, schedule, shift, n):
        self._schedule = schedule
        self._shift = shift
        self._n = n

    def reset(self, engine):
        return None

    def choose_missing_edge(self, engine):
        edge = self._schedule[engine.round_no % len(self._schedule)]
        if edge is None:
            return None
        return (edge + self._shift) % self._n


class ReflectedAdversary:
    """Reflect a base edge schedule through node 0 (edge i -> n-1-i)."""

    def __init__(self, schedule, n):
        self._schedule = schedule
        self._n = n

    def reset(self, engine):
        return None

    def choose_missing_edge(self, engine):
        edge = self._schedule[engine.round_no % len(self._schedule)]
        if edge is None:
            return None
        return (self._n - 1 - edge) % self._n


def trajectory(engine, rounds):
    out = []
    for _ in range(rounds):
        if engine.all_terminated:
            break
        engine.step()
        out.append(tuple((a.node, a.port, a.terminated) for a in engine.agents))
    return out


schedules = st.lists(
    st.one_of(st.none(), st.integers(min_value=0, max_value=7)),
    min_size=1, max_size=12,
)


class TestRotationInvariance:
    @settings(max_examples=25)
    @given(
        n=st.integers(min_value=5, max_value=8),
        a=st.integers(min_value=0, max_value=7),
        b=st.integers(min_value=0, max_value=7),
        shift=st.integers(min_value=1, max_value=7),
        schedule=schedules,
    )
    def test_known_bound_rotates(self, n, a, b, shift, schedule):
        schedule = [e % n if e is not None else None for e in schedule]
        base = build_engine(
            KnownUpperBound(bound=n), ring_size=n,
            positions=[a % n, b % n],
            adversary=RotatedAdversary(schedule, 0, n),
        )
        rotated = build_engine(
            KnownUpperBound(bound=n), ring_size=n,
            positions=[(a + shift) % n, (b + shift) % n],
            adversary=RotatedAdversary(schedule, shift, n),
        )
        t_base = trajectory(base, 3 * n)
        t_rot = trajectory(rotated, 3 * n)
        assert len(t_base) == len(t_rot)
        for row_base, row_rot in zip(t_base, t_rot):
            for (node, port, term), (node_r, port_r, term_r) in zip(row_base, row_rot):
                assert node_r == (node + shift) % n
                assert port_r == port
                assert term_r == term

    @settings(max_examples=15)
    @given(
        n=st.integers(min_value=5, max_value=8),
        shift=st.integers(min_value=1, max_value=7),
        schedule=schedules,
    )
    def test_landmark_rotates_with_everything_else(self, n, shift, schedule):
        schedule = [e % n if e is not None else None for e in schedule]
        base = build_engine(
            LandmarkWithChirality(), ring_size=n, positions=[1, 3], landmark=0,
            adversary=RotatedAdversary(schedule, 0, n),
        )
        rotated = build_engine(
            LandmarkWithChirality(), ring_size=n,
            positions=[(1 + shift) % n, (3 + shift) % n],
            landmark=shift % n,
            adversary=RotatedAdversary(schedule, shift, n),
        )
        t_base = trajectory(base, 40 * n)
        t_rot = trajectory(rotated, 40 * n)
        assert [
            tuple(((node + shift) % n, port, term) for node, port, term in row)
            for row in t_base
        ] == t_rot


class TestReflectionInvariance:
    @settings(max_examples=20)
    @given(
        n=st.integers(min_value=5, max_value=8),
        a=st.integers(min_value=0, max_value=7),
        b=st.integers(min_value=0, max_value=7),
        schedule=schedules,
    )
    def test_known_bound_reflects(self, n, a, b, schedule):
        """Mirroring positions, orientations and edges reproduces the run.

        Node ``v`` maps to ``-v mod n``; edge ``i = (v_i, v_{i+1})`` maps to
        ``(-i-1 mod n)``; a CANONICAL agent maps to a MIRRORED one.
        """
        schedule = [e % n if e is not None else None for e in schedule]

        class Base:
            def reset(self, engine):
                return None

            def choose_missing_edge(self, engine):
                return schedule[engine.round_no % len(schedule)]

        class Mirror:
            def reset(self, engine):
                return None

            def choose_missing_edge(self, engine):
                edge = schedule[engine.round_no % len(schedule)]
                return None if edge is None else (-edge - 1) % n

        base = build_engine(
            KnownUpperBound(bound=n), ring_size=n,
            positions=[a % n, b % n],
            orientations=[CANONICAL, CANONICAL],
            adversary=Base(),
        )
        mirrored = build_engine(
            KnownUpperBound(bound=n), ring_size=n,
            positions=[(-a) % n, (-b) % n],
            orientations=[MIRRORED, MIRRORED],
            adversary=Mirror(),
        )
        t_base = trajectory(base, 3 * n)
        t_mirror = trajectory(mirrored, 3 * n)
        assert len(t_base) == len(t_mirror)
        for row_base, row_mirror in zip(t_base, t_mirror):
            for (node, port, term), (node_m, port_m, term_m) in zip(row_base, row_mirror):
                assert node_m == (-node) % n
                assert term_m == term
                if port is None:
                    assert port_m is None
                else:
                    assert port_m is not None and port_m is not port
