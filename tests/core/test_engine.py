"""Engine semantics: the round loop of Section 2.1, pinned by tests.

Uses a scripted pseudo-algorithm so every effect (port mutual exclusion,
blocking, crossing, passive transport, counters) is isolated from real
algorithm logic.
"""

import itertools

import pytest

from repro.adversary import FixedMissingEdge, NoRemoval
from repro.core import (
    ENTER_NODE,
    Engine,
    EventKind,
    GlobalDirection,
    LEFT,
    MIRRORED,
    RIGHT,
    Ring,
    STAY,
    TERMINATE,
    Trace,
    TransportModel,
    move,
)
from repro.core.errors import AdversaryViolation, ConfigurationError, InvariantViolation
from repro.schedulers import FsyncScheduler, ScriptedScheduler


class ScriptedAlgorithm:
    """Plays back a fixed action list per agent (tests only).

    Scripts are assigned to agents in construction order; once a script is
    exhausted the agent STAYs forever.
    """

    name = "scripted"

    def __init__(self, *scripts):
        self._scripts = list(scripts)
        self._assign = itertools.count()

    def setup(self, memory):
        memory.vars["script"] = self._scripts[next(self._assign)]
        memory.vars["pc"] = 0

    def compute(self, snapshot, memory):
        script = memory.vars["script"]
        pc = memory.vars["pc"]
        if pc >= len(script):
            return STAY
        memory.vars["pc"] = pc + 1
        return script[pc]


def engine_for(scripts, n=6, positions=(0,), adversary=None, scheduler=None,
               transport=TransportModel.NS, orientations=None, landmark=None,
               trace=None):
    return Engine(
        Ring(n, landmark=landmark),
        ScriptedAlgorithm(*scripts),
        list(positions),
        orientations=orientations,
        scheduler=scheduler or FsyncScheduler(),
        adversary=adversary or NoRemoval(),
        transport=transport,
        trace=trace,
    )


class TestConstruction:
    def test_requires_agents(self):
        with pytest.raises(ConfigurationError):
            engine_for([], positions=[])

    def test_orientation_count_must_match(self):
        with pytest.raises(ConfigurationError):
            engine_for([[]], positions=[0], orientations=[])

    def test_positions_are_normalized(self):
        engine = engine_for([[]], n=5, positions=[7])
        assert engine.agents[0].node == 2

    def test_initial_nodes_are_visited(self):
        engine = engine_for([[], []], n=6, positions=[1, 4])
        assert engine.visited == {1, 4}

    def test_landmark_observed_at_setup(self):
        engine = engine_for([[]], n=6, positions=[2], landmark=2)
        assert engine.agents[0].memory.landmark_seen


class TestBasicMovement:
    def test_left_move_with_canonical_orientation_decrements_index(self):
        engine = engine_for([[move(LEFT)]], n=6, positions=[3])
        engine.step()
        assert engine.agents[0].node == 2

    def test_right_move_increments_index(self):
        engine = engine_for([[move(RIGHT)]], n=6, positions=[3])
        engine.step()
        assert engine.agents[0].node == 4

    def test_mirrored_orientation_flips_movement(self):
        engine = engine_for(
            [[move(LEFT)]], n=6, positions=[3], orientations=[MIRRORED]
        )
        engine.step()
        assert engine.agents[0].node == 4

    def test_mover_arrives_in_interior(self):
        engine = engine_for([[move(LEFT)]], n=6, positions=[3])
        engine.step()
        assert engine.agents[0].port is None

    def test_counters_after_successful_move(self):
        engine = engine_for([[move(LEFT)]], n=6, positions=[3])
        engine.step()
        mem = engine.agents[0].memory
        assert mem.Ttime == 1
        assert mem.Tsteps == 1
        assert mem.net == -1
        assert mem.moved

    def test_stay_keeps_everything(self):
        engine = engine_for([[STAY]], n=6, positions=[3])
        engine.step()
        mem = engine.agents[0].memory
        assert engine.agents[0].node == 3
        assert mem.Tsteps == 0
        assert mem.Ttime == 1

    def test_walks_around_the_ring(self):
        engine = engine_for([[move(RIGHT)] * 6], n=6, positions=[0])
        for _ in range(6):
            engine.step()
        assert engine.agents[0].node == 0
        assert engine.exploration_complete
        assert engine.exploration_round == 5  # last new node entered in round 4


class TestBlocking:
    def test_missing_edge_blocks_the_mover(self):
        # Moving LEFT from node 3 (canonical) crosses edge 2.
        engine = engine_for([[move(LEFT)] * 3], n=6, positions=[3],
                            adversary=FixedMissingEdge(2))
        engine.step()
        agent = engine.agents[0]
        assert agent.node == 3
        assert agent.port is GlobalDirection.MINUS
        assert not agent.memory.moved
        assert agent.memory.Btime == 1

    def test_btime_accumulates_while_pushing_same_port(self):
        engine = engine_for([[move(LEFT)] * 4], n=6, positions=[3],
                            adversary=FixedMissingEdge(2))
        for _ in range(4):
            engine.step()
        assert engine.agents[0].memory.Btime == 4

    def test_blocked_agent_crosses_once_edge_returns(self):
        engine = engine_for([[move(LEFT)] * 3], n=6, positions=[3],
                            adversary=FixedMissingEdge(2, until_round=2))
        engine.step()
        engine.step()
        assert engine.agents[0].node == 3
        engine.step()
        assert engine.agents[0].node == 2
        assert engine.agents[0].memory.Btime == 0

    def test_direction_change_resets_btime(self):
        engine = engine_for(
            [[move(LEFT), move(LEFT), move(RIGHT)]], n=6, positions=[3],
            adversary=FixedMissingEdge(2),
        )
        engine.step()
        engine.step()
        assert engine.agents[0].memory.Btime == 2
        engine.step()  # reverse: fresh attempt through the other port
        assert engine.agents[0].node == 4
        assert engine.agents[0].memory.Btime == 0


class TestPortMutualExclusion:
    def test_contention_one_winner_one_failure(self):
        engine = engine_for([[move(LEFT)], [move(LEFT)]], n=6, positions=[3, 3])
        engine.step()
        nodes = sorted(a.node for a in engine.agents)
        assert nodes == [2, 3]  # winner crossed, loser stayed
        loser = next(a for a in engine.agents if a.node == 3)
        assert loser.memory.failed
        assert not loser.memory.moved

    def test_default_tie_break_prefers_lower_index(self):
        engine = engine_for([[move(LEFT)], [move(LEFT)]], n=6, positions=[3, 3])
        engine.step()
        assert engine.agents[0].node == 2
        assert engine.agents[1].node == 3

    def test_failed_flag_is_one_shot(self):
        engine = engine_for([[move(LEFT), STAY, STAY], [move(LEFT), STAY, STAY]],
                            n=6, positions=[3, 3])
        engine.step()
        loser = engine.agents[1]
        assert engine.snapshot_for(loser).failed
        engine.step()
        assert not engine.snapshot_for(loser).failed

    def test_occupied_port_is_denied(self):
        # Agent 0 blocks on edge 2 in round 0; agent 1 walks into node 3 in
        # round 0 and requests the same (still occupied) port in round 1.
        engine = engine_for(
            [[move(LEFT), move(LEFT)], [move(LEFT), move(LEFT)]],
            n=6, positions=[3, 4], adversary=FixedMissingEdge(2),
        )
        engine.step()
        assert engine.agents[0].port is GlobalDirection.MINUS
        assert engine.agents[1].node == 3
        engine.step()
        assert engine.agents[1].memory.failed
        assert engine.agents[1].node == 3

    def test_port_vacated_this_round_stays_denied(self):
        # Agent 0 sits blocked on node 3's minus port, then reverses; agent 1
        # (in the node) requests that port the same round and must fail.
        engine = engine_for(
            [[move(LEFT), move(LEFT), move(RIGHT)],
             [move(LEFT), move(LEFT), move(LEFT)]],
            n=6, positions=[3, 4], adversary=FixedMissingEdge(2),
        )
        engine.step()
        engine.step()
        engine.step()
        assert engine.agents[0].node == 4  # reversed and crossed edge 3
        assert engine.agents[1].memory.failed
        assert engine.agents[1].node == 3

    def test_crossing_agents_swap_without_detection(self):
        engine = engine_for([[move(RIGHT)], [move(LEFT)]], n=6, positions=[2, 3])
        engine.step()
        assert engine.agents[0].node == 3
        assert engine.agents[1].node == 2
        assert engine.agents[0].memory.moved
        assert engine.agents[1].memory.moved


class TestEnterNode:
    def test_enter_node_steps_off_the_port(self):
        engine = engine_for([[move(LEFT), ENTER_NODE]], n=6, positions=[3],
                            adversary=FixedMissingEdge(2))
        engine.step()
        assert engine.agents[0].port is not None
        engine.step()
        assert engine.agents[0].port is None
        assert engine.agents[0].node == 3
        assert engine.agents[0].memory.Btime == 0

    def test_enter_node_in_interior_is_a_noop(self):
        engine = engine_for([[ENTER_NODE]], n=6, positions=[3])
        engine.step()
        assert engine.agents[0].node == 3
        assert engine.agents[0].port is None


class TestTermination:
    def test_terminated_agent_stops(self):
        engine = engine_for([[TERMINATE, move(LEFT)]], n=6, positions=[3])
        engine.step()
        agent = engine.agents[0]
        assert agent.terminated
        assert engine.termination_rounds[0] == 0
        assert not engine.step()  # nothing left to run

    def test_run_halts_when_all_terminated(self):
        engine = engine_for([[move(LEFT), TERMINATE]], n=6, positions=[3])
        result = engine.run(100)
        assert result.halted_reason == "all-terminated"
        assert result.rounds == 2

    def test_terminated_agent_keeps_its_port(self):
        """A terminated agent on a port still occupies it physically."""
        engine = engine_for(
            [[move(LEFT), TERMINATE], [STAY, STAY, move(LEFT)]],
            n=6, positions=[3, 3], adversary=FixedMissingEdge(2),
        )
        engine.step()  # agent 0 blocks on the port
        engine.step()  # agent 0 terminates on the port
        engine.step()  # agent 1 requests the same port: denied
        assert engine.agents[1].memory.failed


class TestRunStops:
    def test_stop_on_exploration(self):
        engine = engine_for([[move(RIGHT)] * 10], n=5, positions=[0])
        result = engine.run(50, stop_on_exploration=True)
        assert result.halted_reason == "explored"
        assert result.explored

    def test_stop_when_custom_condition(self):
        engine = engine_for([[move(RIGHT)] * 10], n=6, positions=[0])
        result = engine.run(50, stop_when=lambda e: e.round_no >= 3)
        assert result.halted_reason == "stop-condition"
        assert result.rounds == 3

    def test_horizon(self):
        engine = engine_for([[STAY] * 100], n=6, positions=[0])
        result = engine.run(7)
        assert result.halted_reason == "horizon"
        assert result.rounds == 7

    def test_invalid_max_rounds(self):
        engine = engine_for([[]], n=6, positions=[0])
        with pytest.raises(ConfigurationError):
            engine.run(0)


class TestValidation:
    def test_adversary_cannot_remove_invalid_edge(self):
        class Bad:
            def reset(self, engine):
                pass

            def choose_missing_edge(self, engine):
                return 99

        engine = engine_for([[move(LEFT)]], n=6, positions=[0], adversary=Bad())
        with pytest.raises(AdversaryViolation):
            engine.step()

    def test_scheduler_must_activate_someone(self):
        engine = engine_for([[move(LEFT)], [move(LEFT)]], n=6, positions=[0, 3],
                            scheduler=ScriptedScheduler([set()]))
        with pytest.raises(AdversaryViolation):
            engine.step()

    def test_invariant_checker_detects_shared_port(self):
        engine = engine_for([[], []], n=6, positions=[0, 0])
        engine.agents[0].port = GlobalDirection.PLUS
        engine.agents[1].port = GlobalDirection.PLUS
        with pytest.raises(InvariantViolation):
            engine._check_invariants()


class TestPeek:
    def test_peek_reports_intention_without_side_effects(self):
        engine = engine_for([[move(LEFT), move(RIGHT)]], n=6, positions=[3])
        intent = engine.peek_intended_action(0)
        assert intent == move(LEFT)
        assert engine.agents[0].memory.vars["pc"] == 0  # untouched
        engine.step()
        assert engine.agents[0].node == 2  # the real step still happens

    def test_peek_terminated_agent_stays(self):
        engine = engine_for([[TERMINATE]], n=6, positions=[3])
        engine.step()
        assert engine.peek_intended_action(0) is STAY


class TestSsyncActivation:
    def test_inactive_agents_do_not_act(self):
        engine = engine_for(
            [[move(LEFT)] * 4, [move(LEFT)] * 4], n=8, positions=[3, 6],
            scheduler=ScriptedScheduler([{0}, {0}, {1}]),
        )
        engine.step()
        engine.step()
        assert engine.agents[0].node == 1
        assert engine.agents[1].node == 6
        engine.step()
        assert engine.agents[1].node == 5

    def test_inactive_counters_are_frozen(self):
        engine = engine_for(
            [[move(LEFT)], [move(LEFT)]], n=8, positions=[3, 6],
            scheduler=ScriptedScheduler([{0}]),
        )
        engine.step()
        assert engine.agents[1].memory.Ttime == 0
        assert engine.agents[1].rounds_since_active == 1

    def test_activation_bookkeeping(self):
        engine = engine_for(
            [[STAY] * 3, [STAY] * 3], n=8, positions=[3, 6],
            scheduler=ScriptedScheduler([{0}, {0}, {0, 1}]),
        )
        engine.step()
        engine.step()
        assert engine.agents[1].rounds_since_active == 2
        engine.step()
        assert engine.agents[1].rounds_since_active == 0
        assert engine.agents[0].activations == 3


class TestPassiveTransport:
    def _blocked_then_sleep(self, transport):
        # Agent 0 pushes onto node 3's minus port in round 0 (edge 2 missing),
        # then sleeps in round 1 while the edge is back.  Agent 1 keeps the
        # round alive.
        return engine_for(
            [[move(LEFT), move(LEFT)], [STAY, STAY]],
            n=6, positions=[3, 0],
            adversary=FixedMissingEdge(2, until_round=1),
            scheduler=ScriptedScheduler([{0, 1}, {1}]),
            transport=transport,
        )

    def test_pt_transports_sleeping_agent(self):
        engine = self._blocked_then_sleep(TransportModel.PT)
        engine.step()
        assert engine.agents[0].port is not None
        engine.step()
        agent = engine.agents[0]
        assert agent.node == 2
        assert agent.port is None
        assert agent.memory.Tsteps == 1  # the transport counts as its move
        assert agent.memory.moved
        assert agent.memory.Ttime == 1  # but its clock did not advance

    def test_ns_leaves_sleeping_agent_on_port(self):
        engine = self._blocked_then_sleep(TransportModel.NS)
        engine.step()
        engine.step()
        assert engine.agents[0].node == 3
        assert engine.agents[0].port is not None

    def test_et_leaves_sleeping_agent_on_port(self):
        engine = self._blocked_then_sleep(TransportModel.ET)
        engine.step()
        engine.step()
        assert engine.agents[0].node == 3

    def test_pt_does_not_transport_across_missing_edge(self):
        engine = engine_for(
            [[move(LEFT), move(LEFT)], [STAY, STAY]],
            n=6, positions=[3, 0],
            adversary=FixedMissingEdge(2),  # never comes back
            scheduler=ScriptedScheduler([{0, 1}, {1}]),
            transport=TransportModel.PT,
        )
        engine.step()
        engine.step()
        assert engine.agents[0].node == 3

    def test_pt_does_not_transport_active_agents_extra(self):
        engine = engine_for(
            [[move(LEFT), move(LEFT)]], n=6, positions=[3],
            adversary=FixedMissingEdge(2, until_round=1),
            transport=TransportModel.PT,
        )
        engine.step()
        engine.step()
        # active agent crossed once (normal move), not twice
        assert engine.agents[0].node == 2
        assert engine.agents[0].memory.Tsteps == 1


class TestTraceAndSnapshots:
    def test_trace_records_moves_blocks_and_exploration(self):
        trace = Trace()
        engine = engine_for([[move(RIGHT)] * 5], n=5, positions=[0], trace=trace)
        engine.run(10, stop_on_exploration=True)
        kinds = {e.kind for e in trace}
        assert EventKind.MOVE in kinds
        assert EventKind.EXPLORED in kinds
        assert EventKind.ROUND in kinds

    def test_snapshot_sees_other_agents_positions(self):
        engine = engine_for(
            [[move(LEFT), STAY], [STAY, STAY]], n=6, positions=[3, 3],
            adversary=FixedMissingEdge(2),
        )
        engine.step()
        watcher = engine.agents[1]
        snap = engine.snapshot_for(watcher)
        assert snap.other_on_left_port  # agent 0 stuck on the minus port
        assert snap.others_in_node == 0
        blocked = engine.snapshot_for(engine.agents[0])
        assert blocked.on_port is LEFT
        assert blocked.others_in_node == 1

    def test_mirrored_observer_sees_swapped_ports(self):
        from repro.core import CANONICAL

        engine = engine_for(
            [[move(LEFT), STAY], [STAY, STAY]], n=6, positions=[3, 3],
            orientations=[CANONICAL, MIRRORED],
            adversary=FixedMissingEdge(2),
        )
        engine.step()
        # Agent 0 (canonical) is on the global MINUS port; the mirrored
        # observer calls that port its *right*.
        snap = engine.snapshot_for(engine.agents[1])
        assert snap.other_on_right_port
        assert not snap.other_on_left_port
