"""Golden-trace digests: the legacy ring engine, frozen as a fixture.

The unified topology-generic core (``repro.core.sim``) replaced the
original ring-only round loop of ``core/engine.py``.  To prove the ring
is *trace-exact* through the new core, this module records a canonical
digest of everything observable about a run — the full event stream,
every per-round peek of every agent, and the final result — and
``tests/core/golden_ring_traces.json`` pins the digests produced by the
**pre-refactor engine** (recorded at the commit that still contained the
legacy loop).  The equivalence suite replays the same cells through the
current engine and asserts byte-identical digests, for both the
optimized and the reference (``optimized=False``) paths.

Regenerate (only when a *deliberate* behaviour change is being made)::

    PYTHONPATH=src python -m tests.core.golden_traces --record
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.campaigns.spec import CellConfig

FIXTURE = Path(__file__).with_name("golden_ring_traces.json")

#: The recorded matrix: one cell per (transport x adversary-style)
#: corner, every peeking adversary included.  Deliberately a frozen copy
#: (not an import from the equivalence suite) so extending that suite
#: can never silently change what the golden fixture covers.
GOLDEN_CELLS = [
    CellConfig(algorithm="known-bound", ring_size=12, agents=2, max_rounds=80,
               adversary="random", transport="ns"),
    CellConfig(algorithm="known-bound", ring_size=10, agents=5, max_rounds=80,
               adversary="random", scheduler="round-robin", transport="ns"),
    CellConfig(algorithm="unconscious", ring_size=9, agents=3, max_rounds=60,
               adversary="random", transport="ns", stop_on_exploration=True),
    CellConfig(algorithm="landmark-chirality", ring_size=10, agents=2,
               max_rounds=120, adversary="random", transport="ns", landmark=0),
    CellConfig(algorithm="landmark-no-chirality", ring_size=8, agents=2,
               max_rounds=200, adversary="block-agent", transport="ns",
               landmark=0, chirality=False, flipped=(1,)),
    CellConfig(algorithm="known-bound", ring_size=10, agents=2, max_rounds=120,
               adversary="prevent-meetings", transport="ns"),
    CellConfig(algorithm="known-bound", ring_size=12, agents=6, max_rounds=150,
               adversary="ns-starvation", transport="ns"),
    CellConfig(algorithm="known-bound", ring_size=9, agents=2, max_rounds=40,
               adversary="figure2", transport="ns", placement="explicit",
               positions=(0, 1), chirality=False, flipped=(0, 1)),
    CellConfig(algorithm="pt-bound", ring_size=10, agents=2, max_rounds=200,
               adversary="zigzag", transport="pt", adversary_arg=3),
    CellConfig(algorithm="pt-landmark", ring_size=9, agents=2, max_rounds=200,
               adversary="random", transport="pt", landmark=0),
    CellConfig(algorithm="pt-bound-3", ring_size=9, agents=3, max_rounds=250,
               adversary="random", transport="pt"),
    CellConfig(algorithm="et-unconscious", ring_size=8, agents=2, max_rounds=200,
               adversary="random", transport="et"),
    CellConfig(algorithm="et-exact", ring_size=9, agents=3, max_rounds=300,
               adversary="random", transport="et", bound=9),
    CellConfig(algorithm="et-exact", ring_size=12, agents=3, max_rounds=200,
               adversary="theorem19", transport="et", bound=6,
               placement="explicit", positions=(0, 2, 4)),
]

GOLDEN_SEEDS = (0, 1)


def cell_id(cell: CellConfig, optimized: bool) -> str:
    path = "opt" if optimized else "ref"
    return (f"{cell.algorithm}-{cell.adversary}-{cell.transport}"
            f"-n{cell.ring_size}-k{cell.agents}-seed{cell.seed}-{path}")


def run_digest(cell: CellConfig, *, optimized: bool) -> str:
    """One canonical sha256 over a run's events, peeks and result.

    Uses only process-stable serialisations (enum ``.value``/``.name``,
    ``str`` of event details, plain ints) — never Python ``hash`` or
    object reprs that may grow fields — so digests recorded by the
    legacy engine stay comparable forever.
    """
    from repro.campaigns.registry import build_cell_engine
    from repro.core.trace import Trace

    trace = Trace(limit=None)
    engine = build_cell_engine(cell, trace=trace, optimized=optimized)
    peeks = []
    for _ in range(cell.max_rounds):
        row = []
        for agent in engine.agents:
            action = engine.peek_intended_action(agent.index)
            row.append([
                action.kind.value,
                action.direction.name if action.direction is not None else None,
                engine.peek_intended_edge(agent.index),
            ])
        peeks.append(row)
        if not engine.step():
            break
    result = engine._build_result("golden")
    payload = {
        "events": [[e.round, e.kind.value, e.agent, str(e.detail)]
                   for e in trace.events],
        "peeks": peeks,
        "result": {
            "ring_size": result.ring_size,
            "rounds": result.rounds,
            "explored": result.explored,
            "exploration_round": result.exploration_round,
            "visited": sorted(result.visited),
            "halted_reason": result.halted_reason,
            "agents": [[a.index, a.moves, a.terminated, a.termination_round,
                        a.final_node, a.waiting_on_port]
                       for a in result.agents],
        },
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def record() -> dict[str, str]:
    from dataclasses import replace

    digests: dict[str, str] = {}
    for cell in GOLDEN_CELLS:
        for seed in GOLDEN_SEEDS:
            seeded = replace(cell, seed=seed)
            for optimized in (True, False):
                digests[cell_id(seeded, optimized)] = run_digest(
                    seeded, optimized=optimized)
    return digests


def golden_result_payload(cell: CellConfig, *, optimized: bool = True) -> dict:
    """The ``result`` block of :func:`run_digest`'s payload, un-hashed.

    Runs the exact stepping discipline the digest uses (step up to
    ``max_rounds``, ignoring ``stop_on_exploration``; halt reason is the
    literal ``"golden"`` label).  The batch-replay tests compare
    :class:`~repro.core.batch.BatchCore` output against this block: the
    digest over the same run is pinned by the fixture, so payload
    equality here chains batch == scalar == legacy.
    """
    from repro.campaigns.registry import build_cell_engine

    engine = build_cell_engine(cell, optimized=optimized)
    for _ in range(cell.max_rounds):
        if not engine.step():
            break
    result = engine._build_result("golden")
    return {
        "ring_size": result.ring_size,
        "rounds": result.rounds,
        "explored": result.explored,
        "exploration_round": result.exploration_round,
        "visited": sorted(result.visited),
        "halted_reason": result.halted_reason,
        "agents": [[a.index, a.moves, a.terminated, a.termination_round,
                    a.final_node, a.waiting_on_port]
                   for a in result.agents],
    }


def load_fixture() -> dict[str, str]:
    return json.loads(FIXTURE.read_text())


if __name__ == "__main__":  # pragma: no cover - manual regeneration entry
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--record", action="store_true",
                        help="rewrite the fixture from the current engine")
    args = parser.parse_args()
    digests = record()
    if args.record:
        FIXTURE.write_text(json.dumps(digests, indent=1, sort_keys=True) + "\n")
        print(f"wrote {FIXTURE} ({len(digests)} digests)")
    else:
        pinned = load_fixture()
        bad = [k for k, v in digests.items() if pinned.get(k) != v]
        print("MISMATCH:" if bad else "all digests match",
              ", ".join(bad) if bad else f"({len(digests)} digests)")
