"""Differential suite: BatchCore vs the scalar cores, cell by cell.

The vectorized batch engine re-implements the FSYNC round loop as
whole-array NumPy operations; these tests are its correctness proof,
built on the shared harness (:mod:`repro.analysis.differential`):

* a deterministic grid — >= 20 cells x 3 seeds covering every
  vectorizable algorithm/adversary pair, every placement policy, bound
  overrides and mirrored orientations — executed as real mixed batches
  and compared against *both* scalar paths;
* lockstep round-by-round state equality (positions, ports, every
  memory counter) so divergences that cancel by run end still fail;
* hypothesis-generated compositions: random ring sizes, placements and
  adversary schedules, mixed horizons (so batches mix terminated,
  halted and running cells) — batch and scalar must agree cell-by-cell
  for *any* valid composition;
* the eligibility predicate itself: the single shared function the
  executor, the worker and these tests import must accept exactly the
  configurations the batch core handles and reject the rest with a
  reason.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.differential import (
    SCALAR_PATHS,
    differential_cells,
    lockstep_divergence,
    result_payload,
)
from repro.campaigns.spec import CellConfig
from repro.core.batch import (
    BATCH_ADVERSARIES,
    BATCH_ALGORITHMS,
    BATCH_SCHEDULERS,
    BATCH_TRANSPORTS,
    BatchCore,
    batch_eligible,
    batch_ineligible_reason,
    batch_width,
    numpy_available,
    run_batch_cells,
)
from repro.core.errors import ConfigurationError

pytestmark = pytest.mark.skipif(
    not numpy_available(), reason="batch core needs numpy")

SEEDS = (0, 1, 2)


#: The transport the paper pairs each algorithm family with.  Transport
#: is still a free axis (the grid crosses them deliberately below); this
#: just makes the default grid exercise PT rides and ET bookkeeping.
_HOME_TRANSPORT = {
    "pt-bound": "pt", "pt-bound-3": "pt",
    "pt-landmark": "pt", "pt-landmark-3": "pt",
    "et-exact": "et", "et-unconscious": "et",
}

#: The pre-drawn-activation-mask schedulers (everything but fsync/auto).
_SSYNC_SCHEDULERS = ("round-robin", "random-fair", "et-fair")


def _grid_cells() -> list[CellConfig]:
    """>= 20 cells covering every vectorizable algorithm x adversary,
    each at its home transport, plus an SSYNC scheduler sweep."""
    cells = []
    # Every (algorithm, adversary) pair at a couple of shapes, plus a
    # third shape under an explicit SSYNC scheduler (cycled so the grid
    # covers every algorithm x scheduler pair across adversaries).
    for i, algorithm in enumerate(sorted(BATCH_ALGORITHMS)):
        stop = algorithm == "unconscious"
        transport = _HOME_TRANSPORT.get(algorithm, "ns")
        for j, adversary in enumerate(sorted(BATCH_ADVERSARIES)):
            cells.append(CellConfig(
                algorithm=algorithm, ring_size=8, agents=2, max_rounds=90,
                adversary=adversary, edge=3, transport=transport,
                stop_on_exploration=stop))
            cells.append(CellConfig(
                algorithm=algorithm, ring_size=11, agents=3, max_rounds=70,
                adversary=adversary, edge=10, transport=transport,
                placement="offset-spread", stop_on_exploration=stop))
            cells.append(CellConfig(
                algorithm=algorithm, ring_size=9, agents=2, max_rounds=60,
                adversary=adversary, edge=4, transport=transport,
                scheduler=_SSYNC_SCHEDULERS[(i + j) % 3],
                stop_on_exploration=stop))
    # Placement policies, explicit positions (incl. out-of-range, which
    # resolve_positions wraps), mirrored orientation, bound overrides,
    # k=1 and a crowded ring.
    cells += [
        CellConfig(algorithm="known-bound", ring_size=9, agents=3,
                   max_rounds=80, adversary="random", placement="thirds"),
        CellConfig(algorithm="known-bound", ring_size=7, agents=2,
                   max_rounds=60, adversary="random", placement="origin"),
        CellConfig(algorithm="unconscious", ring_size=10, agents=2,
                   max_rounds=120, adversary="random", placement="explicit",
                   positions=(0, 13), stop_on_exploration=True),
        CellConfig(algorithm="known-bound", ring_size=8, agents=2,
                   max_rounds=80, adversary="random", chirality=False,
                   flipped=(1,)),
        CellConfig(algorithm="known-bound", ring_size=10, agents=2,
                   max_rounds=100, adversary="random", bound=12),
        CellConfig(algorithm="known-bound", ring_size=6, agents=1,
                   max_rounds=50, adversary="random"),
        CellConfig(algorithm="unconscious", ring_size=5, agents=5,
                   max_rounds=60, adversary="random",
                   stop_on_exploration=True),
        CellConfig(algorithm="known-bound", ring_size=12, agents=4,
                   max_rounds=30, adversary="periodic", edge=0),
        # Non-origin landmarks, cross-transport schedulers, bound
        # overrides under PT — the frontier's new corners.
        CellConfig(algorithm="landmark-chirality", ring_size=9, agents=2,
                   max_rounds=80, adversary="random", landmark=4),
        CellConfig(algorithm="landmark-no-chirality", ring_size=8, agents=3,
                   max_rounds=90, adversary="random", landmark=5,
                   transport="pt", scheduler="random-fair"),
        CellConfig(algorithm="start-from-landmark", ring_size=7, agents=2,
                   max_rounds=70, adversary="random", landmark=3),
        CellConfig(algorithm="et-exact", ring_size=8, agents=3,
                   max_rounds=60, adversary="random", transport="et",
                   scheduler="et-fair"),
        CellConfig(algorithm="pt-bound", ring_size=8, agents=2,
                   max_rounds=80, adversary="random", transport="pt",
                   bound=10),
        CellConfig(algorithm="known-bound", ring_size=8, agents=2,
                   max_rounds=80, adversary="random", transport="et",
                   scheduler="round-robin"),
    ]
    return cells


GRID = _grid_cells()


class TestGridEquivalence:
    def test_grid_is_wide_enough(self):
        assert len(GRID) >= 20
        covered = {(c.algorithm, c.adversary) for c in GRID}
        assert covered >= {
            (alg, adv)
            for alg in BATCH_ALGORITHMS for adv in BATCH_ADVERSARIES}
        # the widened frontier: every transport, every scheduler, every
        # algorithm x SSYNC-scheduler pair
        assert {c.transport for c in GRID} == set(BATCH_TRANSPORTS)
        assert {c.scheduler for c in GRID} >= set(_SSYNC_SCHEDULERS)
        assert {(c.algorithm, c.scheduler) for c in GRID} >= {
            (alg, sched)
            for alg in BATCH_ALGORITHMS for sched in _SSYNC_SCHEDULERS}
        assert all(batch_eligible(c) for c in GRID)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_batch_agrees_with_both_scalar_paths(self, seed):
        """The whole grid as ONE mixed batch, against both scalar paths."""
        from dataclasses import replace

        cells = [replace(c, seed=seed) for c in GRID]
        divergences = differential_cells(cells, paths=SCALAR_PATHS)
        assert not divergences, "\n".join(str(d) for d in divergences)

    def test_round_counts_match_cell_by_cell(self):
        """Lockstep round/halt accounting, one batch vs per-cell scalar."""
        from repro.analysis.differential import scalar_result

        results = run_batch_cells(GRID)
        for cell, batch_result in zip(GRID, results):
            scalar = scalar_result(cell, optimized=True)
            assert batch_result.rounds == scalar.rounds, cell
            assert batch_result.halted_reason == scalar.halted_reason, cell


class TestLockstep:
    """Round-by-round state equality (not just final results)."""

    @pytest.mark.parametrize("cell", [
        GRID[0], GRID[5], GRID[9], GRID[-4], GRID[-2],
        CellConfig(algorithm="unconscious", ring_size=9, agents=3,
                   max_rounds=60, adversary="random", seed=7,
                   stop_on_exploration=True),
        CellConfig(algorithm="known-bound", ring_size=13, agents=2,
                   max_rounds=120, adversary="fixed", edge=5, seed=3),
    ], ids=lambda c: f"{c.algorithm}-{c.adversary}-n{c.ring_size}-k{c.agents}")
    def test_every_round_state_identical(self, cell):
        assert lockstep_divergence(cell) is None


class TestMixedCompositions:
    def test_mixed_horizons_batch_mixes_halted_and_running(self):
        """Cells halting at wildly different rounds share one batch."""
        from dataclasses import replace

        # A cell that actually terminates well before round 90, so the
        # horizon sweep really mixes halt reasons (GRID[0] is sorted-
        # alphabetically "et-exact", which never terminates with k=2).
        base = CellConfig(algorithm="known-bound", ring_size=8, agents=2,
                          max_rounds=90, adversary="fixed", edge=3,
                          transport="ns")
        cells = [replace(base, max_rounds=m, seed=s)
                 for m in (1, 2, 7, 40, 90) for s in SEEDS]
        # sanity: the composition really mixes halt reasons
        results = run_batch_cells(cells)
        assert len({r.halted_reason for r in results}) >= 2
        assert not differential_cells(cells)

    def test_singleton_batch(self):
        assert not differential_cells([GRID[3]])

    def test_core_requires_uniform_shape(self):
        with pytest.raises(ConfigurationError):
            BatchCore([GRID[0],
                       CellConfig(algorithm="unconscious", ring_size=8,
                                  agents=3, max_rounds=10)])

    def test_run_batch_cells_groups_mixed_shapes(self):
        """run_batch_cells regroups by (algorithm, k) and restores order."""
        mixed = [GRID[0], GRID[2], GRID[1], GRID[0]]
        payloads = [result_payload(r) for r in run_batch_cells(mixed)]
        singles = [result_payload(run_batch_cells([c])[0]) for c in mixed]
        assert payloads == singles


class TestSSyncMaskReplay:
    """Pre-drawn activation masks vs the scalar schedulers, round by round.

    The SSYNC story batches by replaying each cell's scheduler draws into
    per-round activation masks; lockstep comparison after *every* round
    is the proof that the mask stream equals the scalar interleaving
    (same RNG, same starvation caps, same ET debt forcing).
    """

    @pytest.mark.parametrize("scheduler", _SSYNC_SCHEDULERS)
    @pytest.mark.parametrize("algorithm,transport", [
        ("known-bound", "ns"),
        ("pt-bound", "pt"),
        ("et-unconscious", "et"),
    ], ids=lambda v: v if isinstance(v, str) else "")
    def test_every_round_matches_scalar(self, scheduler, algorithm,
                                        transport):
        for seed in SEEDS:
            cell = CellConfig(
                algorithm=algorithm, ring_size=9, agents=3, max_rounds=80,
                seed=seed, adversary="random", transport=transport,
                scheduler=scheduler)
            assert lockstep_divergence(cell) is None, (scheduler, seed)

    def test_auto_scheduler_resolves_per_transport(self):
        """auto = fsync/NS, random-fair/PT, et-fair/ET — all in one mix."""
        from dataclasses import replace

        base = [
            CellConfig(algorithm="unconscious", ring_size=8, agents=2,
                       max_rounds=70, adversary="random", transport="ns",
                       stop_on_exploration=True),
            CellConfig(algorithm="pt-landmark", ring_size=8, agents=2,
                       max_rounds=70, adversary="random", transport="pt"),
            CellConfig(algorithm="et-exact", ring_size=8, agents=2,
                       max_rounds=70, adversary="random", transport="et"),
        ]
        cells = [replace(c, seed=s) for c in base for s in SEEDS]
        assert not differential_cells(cells)


class TestMixedEligibility:
    """A chunk mixing batchable and scalar-only cells loses nothing."""

    def test_chunk_interleaves_batch_and_scalar_records(self):
        from dataclasses import replace

        from repro.analysis.differential import scalar_result
        from repro.campaigns.aggregate import metrics_from_result
        from repro.campaigns.executor import run_chunk

        eligible = [replace(GRID[i], seed=9) for i in (0, 5, 9)]
        ineligible = [
            CellConfig(algorithm="known-bound", ring_size=8, agents=2,
                       max_rounds=50, faults="crash:0@3"),
            CellConfig(algorithm="known-bound", ring_size=8, agents=2,
                       max_rounds=50, adversary="prevent-meetings"),
        ]
        assert all(not batch_eligible(c) for c in ineligible)
        cells = [eligible[0], ineligible[0], eligible[1], ineligible[1],
                 eligible[2]]
        records, batched = run_chunk(cells)
        assert batched == 3
        assert [r["key"] for r in records] == [c.key() for c in cells]
        for cell, record in zip(cells, records):
            assert "error" not in record, record
            assert record["metrics"] == metrics_from_result(
                scalar_result(cell))


class TestWidthAndScale:
    """REPRO_BATCH_WIDTH validation and the packed-bitmap memory cap."""

    def test_batch_width_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH_WIDTH", "64")
        assert batch_width() == 64
        from repro.core.batch import BATCH_WIDTH

        monkeypatch.delenv("REPRO_BATCH_WIDTH")
        assert batch_width() == BATCH_WIDTH
        monkeypatch.setenv("REPRO_BATCH_WIDTH", "")  # empty = unset
        assert batch_width() == BATCH_WIDTH

    @pytest.mark.parametrize(
        "value", ["0", "-3", "abc", "1.5", str((1 << 16) + 1)])
    def test_batch_width_rejects_bad_values(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_BATCH_WIDTH", value)
        with pytest.raises(ConfigurationError, match="REPRO_BATCH_WIDTH"):
            batch_width()

    def test_split_batches_counts_packed_visited_bytes(self, monkeypatch):
        """Pins the packed sizing: 1024 cells x 10^5 nodes is ONE batch.

        Packed, the visited plane is 1024 x ceil(1e5/8) B ~ 12.2 MiB —
        under the 64 MiB cap; an unpacked bool bitmap (1024 x 1e5 B
        ~ 97.7 MiB) would have forced a split.  This is the regression
        test for the 10^5-node-ring sweep that previously exceeded the
        cap.
        """
        from repro.core.batch import _MAX_VISITED_BYTES, _split_batches

        monkeypatch.setenv("REPRO_BATCH_WIDTH", "1024")
        n = 100_000
        cells = [CellConfig(algorithm="known-bound", ring_size=n, agents=2,
                            max_rounds=5, seed=s, adversary="random")
                 for s in range(1024)]
        batches = _split_batches(list(enumerate(cells)))
        assert len(batches) == 1
        assert 1024 * ((n + 7) // 8) <= _MAX_VISITED_BYTES   # packed fits
        assert 1024 * n > _MAX_VISITED_BYTES                 # bools did not

    def test_hundred_thousand_node_ring_agrees_with_scalar(self):
        cells = [CellConfig(algorithm="known-bound", ring_size=100_000,
                            agents=2, max_rounds=12, seed=s,
                            adversary="random")
                 for s in range(2)]
        assert not differential_cells(cells, paths=("optimized",))

    def test_width_one_still_correct(self, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH_WIDTH", "1")
        cells = GRID[:4]
        from repro.core.batch import _split_batches

        assert len(_split_batches(list(enumerate(cells)))) == 4
        assert not differential_cells(cells, paths=("optimized",))


# -- hypothesis: any valid composition agrees ---------------------------

def _eligible_cell() -> st.SearchStrategy[CellConfig]:
    @st.composite
    def build(draw):
        algorithm = draw(st.sampled_from(sorted(BATCH_ALGORITHMS)))
        n = draw(st.integers(min_value=3, max_value=13))
        k = draw(st.integers(min_value=1, max_value=4))
        adversary = draw(st.sampled_from(sorted(BATCH_ADVERSARIES)))
        placement = draw(st.sampled_from(
            ("spread", "offset-spread", "origin", "explicit")))
        positions = None
        if placement == "explicit":
            positions = tuple(draw(st.lists(
                st.integers(min_value=-2 * n, max_value=2 * n),
                min_size=k, max_size=k)))
        mirrored = draw(st.booleans()) and k >= 2
        flipped = tuple(sorted(draw(st.sets(
            st.integers(min_value=0, max_value=k - 1),
            min_size=1, max_size=k)))) if mirrored else ()
        return CellConfig(
            algorithm=algorithm,
            ring_size=n,
            agents=k,
            max_rounds=draw(st.integers(min_value=1, max_value=120)),
            seed=draw(st.integers(min_value=0, max_value=2 ** 20)),
            adversary=adversary,
            edge=draw(st.integers(min_value=0, max_value=n - 1)),
            transport=draw(st.sampled_from(sorted(BATCH_TRANSPORTS))),
            scheduler=draw(st.sampled_from(sorted(BATCH_SCHEDULERS))),
            placement=placement,
            positions=positions,
            bound=draw(st.sampled_from((None, n, n + 3))),
            landmark=draw(st.sampled_from(
                (None, 0, n // 2, n - 1))),
            chirality=not mirrored,
            flipped=flipped,
            stop_on_exploration=draw(st.booleans()),
        )

    return build()


class TestHypothesisCompositions:
    @settings(max_examples=20, deadline=None)
    @given(cells=st.lists(_eligible_cell(), min_size=1, max_size=6))
    def test_any_valid_batch_agrees_cell_by_cell(self, cells):
        assert all(batch_eligible(c) for c in cells)
        divergences = differential_cells(cells, paths=("optimized",))
        assert not divergences, "\n".join(str(d) for d in divergences)

    @settings(max_examples=15, deadline=None)
    @given(cell=_eligible_cell())
    def test_any_valid_cell_lockstep(self, cell):
        assert lockstep_divergence(cell) is None


# -- the shared eligibility predicate -----------------------------------

class TestEligibilityPredicate:
    """One function, imported everywhere — these pin its contract."""

    def test_executor_and_worker_share_this_predicate(self):
        """The routing layers must use *this* function, not a copy."""
        from repro.campaigns import executor
        from repro.campaigns.distributed import worker

        assert executor.batch_eligible is batch_eligible
        # the worker routes through executor.run_chunk, which closes
        # over the same module-level predicate
        assert worker.run_chunk is executor.run_chunk

    @pytest.mark.parametrize("cell,fragment", [
        (CellConfig(algorithm="strawman", ring_size=8, agents=2,
                    max_rounds=50), "algorithm"),
        (CellConfig(algorithm="pt-bound", ring_size=8, agents=2,
                    max_rounds=50, transport="pt", adversary="zigzag",
                    adversary_arg=3), "adversary"),
        (CellConfig(algorithm="known-bound", ring_size=8, agents=2,
                    max_rounds=50, adversary="prevent-meetings"),
         "adversary"),
        (CellConfig(algorithm="known-bound", ring_size=8, agents=2,
                    max_rounds=50, scheduler="windowed"), "scheduler"),
        (CellConfig(algorithm="known-bound", ring_size=8, agents=2,
                    max_rounds=50, faults="crash:0@3"), "fault"),
        (CellConfig(algorithm="known-bound", ring_size=8, agents=2,
                    max_rounds=50, topology="torus"), "topology"),
        (CellConfig(algorithm="known-bound", ring_size=8, agents=2,
                    max_rounds=50, debug_invariants=True), "invariant"),
        (CellConfig(algorithm="known-bound", ring_size=8, agents=2,
                    max_rounds=50, adversary="fixed", edge=8), "edge"),
        (CellConfig(algorithm="known-bound", ring_size=8, agents=2,
                    max_rounds=50, flipped=(1,)), "flipped"),
        (CellConfig(algorithm="known-bound", ring_size=8, agents=2,
                    max_rounds=50, landmark=8), "landmark"),
    ], ids=lambda v: v if isinstance(v, str) else "")
    def test_ineligible_with_reason(self, cell, fragment):
        reason = batch_ineligible_reason(cell)
        assert reason is not None and fragment in reason
        assert not batch_eligible(cell)

    def test_eligible_cell_has_no_reason(self):
        assert batch_ineligible_reason(GRID[0]) is None

    def test_run_batch_cells_rejects_ineligible(self):
        bad = CellConfig(algorithm="known-bound", ring_size=8, agents=2,
                         max_rounds=50, faults="crash:0@3")
        with pytest.raises(ConfigurationError, match="not batch-eligible"):
            run_batch_cells([GRID[0], bad])

    def test_scalar_rejected_configs_are_ineligible(self):
        """Configs the scalar engine errors on must stay scalar, so the
        fallback reproduces the identical error record."""
        bad = CellConfig(algorithm="known-bound", ring_size=8, agents=2,
                         max_rounds=50, placement="explicit",
                         positions=None)
        assert not batch_eligible(bad)
