"""Trace-equivalence between the optimized and reference engine paths.

The hot-path rebuild (occupancy index, peek caching, snapshot interning,
fused Look/Compute) must be *behaviourally invisible*: seed-matched
configurations run through ``optimized=True`` and ``optimized=False``
must produce identical :class:`~repro.core.trace.Trace` event streams,
identical :class:`~repro.core.results.RunResult`s, identical per-round
peeks, and (for the graph engine) identical per-round agent state.

Coverage is property-style: a grid of named campaign cells spanning every
transport model and every peeking adversary, plus a hypothesis chaos
algorithm under random adversaries/schedulers.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.adversary import RandomMissingEdge
from repro.campaigns.registry import build_cell_engine, build_graph_cell_engine
from repro.campaigns.spec import CellConfig
from repro.core import Engine, LEFT, RIGHT, Ring, STAY, TransportModel, move
from repro.core.snapshot import intern_snapshot
from repro.schedulers import FsyncScheduler, RandomFairScheduler

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


def _lockstep(cell: CellConfig, rounds: int | None = None):
    """Run a cell through both paths in lockstep; compare as we go."""
    from repro.core.trace import Trace

    t_opt, t_ref = Trace(limit=None), Trace(limit=None)
    opt = build_cell_engine(cell, trace=t_opt, optimized=True)
    ref = build_cell_engine(cell, trace=t_ref, optimized=False)
    horizon = rounds if rounds is not None else cell.max_rounds
    for _ in range(horizon):
        # Peeks (cached on the optimized path, fresh on the reference one)
        # must agree for every live agent before each round.
        for agent in opt.agents:
            i = agent.index
            assert opt.peek_intended_action(i) == ref.peek_intended_action(i)
            assert opt.peek_intended_edge(i) == ref.peek_intended_edge(i)
        stepped_opt = opt.step()
        stepped_ref = ref.step()
        assert stepped_opt == stepped_ref
        if not stepped_opt:
            break
    assert t_opt.events == t_ref.events
    assert opt._build_result("equivalence") == ref._build_result("equivalence")
    return opt, ref


# One cell per (transport x adversary-style) corner, every peeking
# adversary included; ring sizes/horizons sized to finish fast while
# leaving the constructions room to exhibit their behaviour.
EQUIVALENCE_CELLS = [
    CellConfig(algorithm="known-bound", ring_size=12, agents=2, max_rounds=80,
               adversary="random", transport="ns"),
    CellConfig(algorithm="known-bound", ring_size=10, agents=5, max_rounds=80,
               adversary="random", scheduler="round-robin", transport="ns"),
    CellConfig(algorithm="unconscious", ring_size=9, agents=3, max_rounds=60,
               adversary="random", transport="ns", stop_on_exploration=True),
    CellConfig(algorithm="landmark-chirality", ring_size=10, agents=2,
               max_rounds=120, adversary="random", transport="ns", landmark=0),
    CellConfig(algorithm="landmark-no-chirality", ring_size=8, agents=2,
               max_rounds=200, adversary="block-agent", transport="ns",
               landmark=0, chirality=False, flipped=(1,)),
    CellConfig(algorithm="known-bound", ring_size=10, agents=2, max_rounds=120,
               adversary="prevent-meetings", transport="ns"),
    CellConfig(algorithm="known-bound", ring_size=12, agents=6, max_rounds=150,
               adversary="ns-starvation", transport="ns"),
    CellConfig(algorithm="known-bound", ring_size=9, agents=2, max_rounds=40,
               adversary="figure2", transport="ns", placement="explicit",
               positions=(0, 1), chirality=False, flipped=(0, 1)),
    CellConfig(algorithm="pt-bound", ring_size=10, agents=2, max_rounds=200,
               adversary="zigzag", transport="pt", adversary_arg=3),
    CellConfig(algorithm="pt-landmark", ring_size=9, agents=2, max_rounds=200,
               adversary="random", transport="pt", landmark=0),
    CellConfig(algorithm="pt-bound-3", ring_size=9, agents=3, max_rounds=250,
               adversary="random", transport="pt"),
    CellConfig(algorithm="et-unconscious", ring_size=8, agents=2, max_rounds=200,
               adversary="random", transport="et"),
    CellConfig(algorithm="et-exact", ring_size=9, agents=3, max_rounds=300,
               adversary="random", transport="et", bound=9),
    CellConfig(algorithm="et-exact", ring_size=12, agents=3, max_rounds=200,
               adversary="theorem19", transport="et", bound=6,
               placement="explicit", positions=(0, 2, 4)),
]


@pytest.mark.parametrize(
    "cell", EQUIVALENCE_CELLS,
    ids=[f"{c.algorithm}-{c.adversary}-{c.transport}" for c in EQUIVALENCE_CELLS],
)
@pytest.mark.parametrize("seed", [0, 1, 7])
def test_cell_equivalence(cell: CellConfig, seed: int):
    from dataclasses import replace

    _lockstep(replace(cell, seed=seed))


class ChaosAlgorithm:
    """Deterministic pseudo-random protocol (hash of own observations)."""

    name = "hotpath-chaos"

    def __init__(self, seed: int) -> None:
        self._seed = seed

    def setup(self, memory) -> None:
        return None

    def compute(self, snapshot, memory):
        h = hash((self._seed, memory.Ttime, memory.Tsteps, memory.net,
                  snapshot.on_port, snapshot.others_in_node,
                  snapshot.other_on_left_port, snapshot.other_on_right_port,
                  snapshot.moved, snapshot.failed))
        choice = h % 4
        if choice == 0:
            return move(LEFT)
        if choice == 1:
            return move(RIGHT)
        if choice == 2 and snapshot.on_port is not None:
            from repro.core.actions import ENTER_NODE

            return ENTER_NODE
        return STAY


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(0, 2**20),
    n=st.integers(4, 12),
    agents=st.integers(1, 5),
    transport=st.sampled_from(list(TransportModel)),
    fsync=st.booleans(),
)
def test_chaos_equivalence(seed, n, agents, transport, fsync):
    """Random protocols, adversaries and schedulers: both paths agree."""
    from repro.api import build_engine
    from repro.core.trace import Trace

    def make(optimized: bool) -> tuple[Engine, Trace]:
        trace = Trace(limit=None)
        engine = build_engine(
            ChaosAlgorithm(seed),
            ring_size=n,
            positions=[(seed + 3 * i) % n for i in range(agents)],
            landmark=seed % n if seed % 2 else None,
            chirality=False,
            flipped=tuple(i for i in range(agents) if (seed >> i) & 1),
            adversary=RandomMissingEdge(seed=seed),
            scheduler=(FsyncScheduler() if fsync
                       else RandomFairScheduler(seed=seed + 1)),
            transport=transport,
            trace=trace,
            optimized=optimized,
        )
        return engine, trace

    opt, t_opt = make(True)
    ref, t_ref = make(False)
    for _ in range(50):
        for agent in opt.agents:
            assert (opt.peek_intended_action(agent.index)
                    == ref.peek_intended_action(agent.index))
        opt.step()
        ref.step()
    assert t_opt.events == t_ref.events
    assert opt._build_result("x") == ref._build_result("x")


def test_indexed_snapshot_matches_scan_every_round():
    """On one optimized engine, the index read equals a fresh O(k) scan."""
    cell = CellConfig(algorithm="known-bound", ring_size=10, agents=6,
                      max_rounds=60, adversary="random", transport="ns",
                      scheduler="random-fair")
    engine = build_cell_engine(cell)
    for _ in range(60):
        for agent in engine.agents:
            assert engine.snapshot_for(agent) == engine._snapshot_for_scan(agent)
        if not engine.step():
            break


def test_cached_peek_matches_fresh_compute():
    """Cache hits return exactly what an uncached peek would."""
    cell = CellConfig(algorithm="known-bound", ring_size=12, agents=8,
                      max_rounds=80, adversary="ns-starvation", transport="ns")
    engine = build_cell_engine(cell)
    for _ in range(80):
        cached = {i: engine.peek_intended_action(i)
                  for i in range(len(engine.agents))}
        cached_edges = {i: engine.peek_intended_edge(i)
                        for i in range(len(engine.agents))}
        engine._peek_cache.clear()
        for i, action in cached.items():
            assert engine.peek_intended_action(i) == action
            assert engine.peek_intended_edge(i) == cached_edges[i]
        engine.step()


def test_snapshot_interning_reuses_instances():
    snap_a = intern_snapshot(None, 1, False, True, False, True, False)
    snap_b = intern_snapshot(None, 1, False, True, False, True, False)
    assert snap_a is snap_b
    assert snap_a == snap_b
    assert intern_snapshot(LEFT, 1, False, True, False, True, False) is not snap_a


def test_occupancy_index_survives_model_check_deepcopy():
    """The exhaustive search deepcopies engines mid-run; the index and the
    peek cache must stay consistent in every branch (the engine's debug
    invariants, on under pytest, verify the index each round)."""
    from repro.analysis.model_check import verify_theorem3

    result = verify_theorem3(5)
    assert result.all_succeeded
    assert result.worst_value == 3 * 5 - 6


#: Graph cells across the widened matrix the unified core opened up:
#: SSYNC schedulers, ET transport, the peeking block-agent adversary and
#: an explicitly terminating explorer — all on non-ring topologies.
GRAPH_CELLS = [
    CellConfig(algorithm="random-walk", ring_size=12, agents=3, max_rounds=150,
               adversary="random", topology="ring"),
    CellConfig(algorithm="random-walk", ring_size=10, agents=2, max_rounds=150,
               adversary="random", topology="path"),
    CellConfig(algorithm="rotor-router", ring_size=12, agents=3, max_rounds=150,
               adversary="random", topology="torus"),
    CellConfig(algorithm="rotor-router", ring_size=11, agents=4, max_rounds=150,
               adversary="none", topology="cactus"),
    CellConfig(algorithm="rotor-router", ring_size=12, agents=3, max_rounds=200,
               adversary="block-agent", topology="torus",
               scheduler="round-robin"),
    CellConfig(algorithm="rotor-router-terminating", ring_size=9, agents=2,
               max_rounds=400, adversary="random", topology="cactus",
               scheduler="random-fair", transport="et"),
    # The Observation-2 port: meeting prevention through the generic
    # topology, on the path (every removal suppressed — the degree-2
    # boundary) and on the graph-facade ring (every removal legal).
    CellConfig(algorithm="rotor-router", ring_size=9, agents=2, max_rounds=200,
               adversary="prevent-meetings", topology="path"),
    CellConfig(algorithm="rotor-router", ring_size=10, agents=2, max_rounds=200,
               adversary="prevent-meetings", topology="ring",
               scheduler="round-robin"),
    # Theorem 9's combined adversary/scheduler off the ring: starves the
    # ring, is forced to let the path explore.
    CellConfig(algorithm="rotor-router", ring_size=8, agents=2, max_rounds=150,
               adversary="ns-starvation", topology="path",
               stop_on_exploration=True),
    CellConfig(algorithm="rotor-router", ring_size=8, agents=2, max_rounds=150,
               adversary="ns-starvation", topology="ring"),
]


@pytest.mark.parametrize(
    "cell", GRAPH_CELLS,
    ids=[f"{c.algorithm}-{c.topology}-{c.adversary}-{c.scheduler}"
         for c in GRAPH_CELLS],
)
@pytest.mark.parametrize("seed", [0, 3])
def test_graph_engine_equivalence(cell: CellConfig, seed: int):
    """Graph cells: indexed and scan paths agree on full per-round state."""
    from dataclasses import replace

    pytest.importorskip("networkx")
    from repro.core.trace import Trace

    cell = replace(cell, seed=seed)
    t_opt, t_ref = Trace(limit=None), Trace(limit=None)
    opt = build_graph_cell_engine(cell, trace=t_opt, optimized=True)
    ref = build_graph_cell_engine(cell, trace=t_ref, optimized=False)
    for _ in range(cell.max_rounds):
        for a_opt, a_ref in zip(opt.agents, ref.agents):
            assert opt.snapshot_for(a_opt) == ref.snapshot_for(a_ref)
        stepped_opt = opt.step()
        stepped_ref = ref.step()
        assert stepped_opt == stepped_ref
        state_opt = [(a.node, a.port, a.terminated, a.memory.moved,
                      a.memory.Tsteps) for a in opt.agents]
        state_ref = [(a.node, a.port, a.terminated, a.memory.moved,
                      a.memory.Tsteps) for a in ref.agents]
        assert state_opt == state_ref
        if opt.exploration_complete or not stepped_opt:
            break
    assert t_opt.events == t_ref.events
    assert opt.visited == ref.visited
    assert opt.exploration_round == ref.exploration_round
    assert opt._build_result("equivalence") == ref._build_result("equivalence")


def test_graph_index_matches_scan_every_round():
    pytest.importorskip("networkx")
    cell = CellConfig(algorithm="random-walk", ring_size=9, agents=5,
                      max_rounds=80, adversary="random", topology="ring", seed=5)
    engine = build_graph_cell_engine(cell)
    for _ in range(80):
        for agent in engine.agents:
            assert engine.snapshot_for(agent) == engine._snapshot_for_scan(agent)
        engine.step()


class TestUnifiedVsLegacyGolden:
    """The ring is byte-identical through the topology-generic core.

    ``tests/core/golden_ring_traces.json`` pins sha256 digests of the full
    event stream, every per-round peek (action + intended edge) of every
    agent, and the final result, recorded by the *pre-refactor* ring-only
    engine (commit 556f46f) over the equivalence-cell matrix — both the
    optimized and the reference Look paths.  Replaying the same cells
    through the unified core must reproduce each digest exactly: this is
    the unified-vs-legacy lockstep proof, with the legacy side frozen in
    the fixture.
    """

    @pytest.fixture(scope="class")
    def pinned(self):
        from tests.core import golden_traces

        return golden_traces.load_fixture()

    @pytest.mark.parametrize(
        "index", range(14), ids=lambda i: f"cell{i}")
    @pytest.mark.parametrize("seed", [0, 1])
    @pytest.mark.parametrize("optimized", [True, False],
                             ids=["opt", "ref"])
    def test_ring_digest_matches_legacy(self, pinned, index, seed, optimized):
        from dataclasses import replace

        from tests.core import golden_traces

        cell = replace(golden_traces.GOLDEN_CELLS[index], seed=seed)
        key = golden_traces.cell_id(cell, optimized)
        assert key in pinned, f"fixture missing {key}; regenerate deliberately"
        assert golden_traces.run_digest(cell, optimized=optimized) == pinned[key]

    def test_fixture_covers_the_whole_matrix(self, pinned):
        from tests.core import golden_traces

        assert len(golden_traces.GOLDEN_CELLS) == 14
        assert len(pinned) == 14 * len(golden_traces.GOLDEN_SEEDS) * 2


class TestBatchVsGolden:
    """Qualifying golden cells replay through the vectorized BatchCore.

    Eligibility is decided by the *shared* routing predicate
    (:func:`repro.core.batch.batch_eligible` — the same function the
    executor and the distributed worker import), and each qualifying
    cell's BatchCore run must reproduce the ``result`` block of the
    pinned golden digest exactly.  The digest over the same scalar run
    is re-verified against the fixture in the same test, so payload
    equality chains batch == scalar == legacy (commit 556f46f).
    """

    def test_exactly_the_oblivious_fault_free_cells_qualify(self):
        # The widened frontier (PT/ET transports, landmark algorithms,
        # SSYNC schedulers) leaves only the peeking-adversary golden
        # cells on the scalar path.
        from repro.core.batch import batch_eligible

        from tests.core import golden_traces

        qualifying = [i for i, cell in enumerate(golden_traces.GOLDEN_CELLS)
                      if batch_eligible(cell)]
        assert qualifying == [0, 1, 2, 3, 9, 10, 11, 12]

    @pytest.mark.parametrize("index", [0, 1, 2, 3, 9, 10, 11, 12],
                             ids=lambda i: f"cell{i}")
    @pytest.mark.parametrize("seed", [0, 1])
    def test_batch_replay_matches_pinned_result(self, index, seed):
        from dataclasses import replace

        from repro.analysis.differential import result_payload
        from repro.core.batch import BatchCore, numpy_available

        from tests.core import golden_traces

        if not numpy_available():
            pytest.skip("batch core needs numpy")
        cell = replace(golden_traces.GOLDEN_CELLS[index], seed=seed)
        # the digest of this very run is still the legacy-pinned one
        pinned = golden_traces.load_fixture()
        assert (golden_traces.run_digest(cell, optimized=True)
                == pinned[golden_traces.cell_id(cell, True)])
        golden = golden_traces.golden_result_payload(cell)
        # replay under the digest's stepping discipline: no early stop
        # on exploration; the "golden" halt label is the loop's, not a
        # semantic difference.
        core = BatchCore([replace(cell, stop_on_exploration=False)])
        batch = result_payload(core.run()[0])
        batch["halted_reason"] = golden["halted_reason"] = None
        assert batch == golden


def test_debug_invariants_flag_resolution():
    """Default resolves on under pytest; campaign cells default it off."""
    ring = Ring(6)

    class Idle:
        name = "idle"

        def setup(self, memory):
            return None

        def compute(self, snapshot, memory):
            return STAY

    from repro.adversary import NoRemoval

    auto = Engine(ring, Idle(), [0], scheduler=FsyncScheduler(),
                  adversary=NoRemoval())
    assert auto._debug  # pytest detected
    off = Engine(ring, Idle(), [0], scheduler=FsyncScheduler(),
                 adversary=NoRemoval(), debug_invariants=False)
    assert not off._debug
    cell = CellConfig(algorithm="known-bound", ring_size=6, agents=2,
                      max_rounds=10, adversary="none", transport="ns")
    assert not build_cell_engine(cell)._debug
    from dataclasses import replace

    noisy = replace(cell, debug_invariants=True)
    assert build_cell_engine(noisy)._debug
    # The flag only changes the store key when enabled (old stores resume).
    assert cell.key() != noisy.key()
