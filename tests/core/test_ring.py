"""Ring topology, edge naming and distance arithmetic."""

import pytest
from hypothesis import given, strategies as st

from repro.core.directions import MINUS, PLUS
from repro.core.errors import ConfigurationError
from repro.core.ring import MIN_RING_SIZE, Ring

sizes = st.integers(min_value=MIN_RING_SIZE, max_value=64)


class TestConstruction:
    def test_minimum_size(self):
        Ring(3)
        with pytest.raises(ConfigurationError):
            Ring(2)

    def test_landmark_must_be_a_node(self):
        Ring(5, landmark=4)
        with pytest.raises(ConfigurationError):
            Ring(5, landmark=5)
        with pytest.raises(ConfigurationError):
            Ring(5, landmark=-1)

    def test_has_landmark(self):
        assert Ring(5, landmark=0).has_landmark
        assert not Ring(5).has_landmark

    def test_repr(self):
        assert "landmark=2" in repr(Ring(4, landmark=2))
        assert "landmark" not in repr(Ring(4))


class TestTopology:
    def test_neighbors_wrap(self):
        ring = Ring(5)
        assert ring.neighbor(4, PLUS) == 0
        assert ring.neighbor(0, MINUS) == 4

    def test_edge_from_plus_port_is_node_index(self):
        ring = Ring(6)
        for node in range(6):
            assert ring.edge_from(node, PLUS) == node

    def test_edge_from_minus_port_is_previous_edge(self):
        ring = Ring(6)
        assert ring.edge_from(0, MINUS) == 5
        assert ring.edge_from(3, MINUS) == 2

    def test_edge_endpoints(self):
        ring = Ring(6)
        assert ring.edge_endpoints(5) == (5, 0)
        assert ring.edge_endpoints(2) == (2, 3)

    @given(sizes, st.integers(min_value=0, max_value=200))
    def test_edge_connects_its_endpoints(self, n, edge):
        ring = Ring(n)
        u, v = ring.edge_endpoints(edge)
        assert ring.neighbor(u, PLUS) == v
        assert ring.neighbor(v, MINUS) == u

    @given(sizes, st.integers(), st.integers())
    def test_directed_distances_sum_to_ring_size(self, n, a, b):
        ring = Ring(n)
        a, b = ring.normalize(a), ring.normalize(b)
        plus = ring.distance(a, b, PLUS)
        minus = ring.distance(a, b, MINUS)
        if a == b:
            assert plus == minus == 0
        else:
            assert plus + minus == n

    @given(sizes, st.integers(), st.integers())
    def test_hop_distance_is_symmetric_and_bounded(self, n, a, b):
        ring = Ring(n)
        d = ring.hop_distance(a, b)
        assert d == ring.hop_distance(b, a)
        assert 0 <= d <= n // 2

    @given(sizes, st.integers())
    def test_walking_the_ring_visits_every_node(self, n, start):
        ring = Ring(n)
        node = ring.normalize(start)
        seen = {node}
        for _ in range(n - 1):
            node = ring.neighbor(node, PLUS)
            seen.add(node)
        assert seen == set(range(n))

    def test_is_landmark(self):
        ring = Ring(5, landmark=3)
        assert ring.is_landmark(3)
        assert ring.is_landmark(8)  # normalization applies
        assert not ring.is_landmark(0)


class TestNetworkxExport:
    def test_full_ring_is_a_cycle(self):
        import networkx as nx

        graph = Ring(7).to_networkx()
        assert nx.is_connected(graph)
        assert graph.number_of_edges() == 7
        assert all(d == 2 for _, d in graph.degree())

    def test_one_interval_connectivity(self):
        """Removing any single edge leaves a connected spanning subgraph."""
        import networkx as nx

        ring = Ring(9, landmark=4)
        for missing in range(9):
            graph = ring.to_networkx(missing_edge=missing)
            assert graph.number_of_edges() == 8
            assert nx.is_connected(graph)

    def test_landmark_attribute(self):
        graph = Ring(5, landmark=2).to_networkx()
        assert graph.nodes[2]["landmark"]
        assert not graph.nodes[0]["landmark"]
