"""Engine invariants under randomized workloads (hypothesis).

Two layers:

* a **differential test** — a single agent driven by a random action script
  is checked against an independent 20-line reference fold of the model's
  movement rules;
* a **chaos test** — multiple agents driven by a deterministic-but-arbitrary
  pseudo-random protocol under random adversaries/schedulers, with the
  model's global invariants asserted after every round.
"""

import itertools

from hypothesis import given, settings, strategies as st

from repro.adversary import RandomMissingEdge
from repro.core import (
    Engine,
    GlobalDirection,
    LEFT,
    RIGHT,
    Ring,
    STAY,
    TransportModel,
    move,
)
from repro.core.directions import CANONICAL, MIRRORED
from repro.schedulers import FsyncScheduler, RandomFairScheduler


class ScriptedSingle:
    """One agent, fixed action list, STAY afterwards."""

    name = "scripted-single"

    def __init__(self, script):
        self._script = script

    def setup(self, memory):
        memory.vars["pc"] = 0

    def compute(self, snapshot, memory):
        pc = memory.vars["pc"]
        if pc >= len(self._script):
            return STAY
        memory.vars["pc"] = pc + 1
        return self._script[pc]


class ChaosAlgorithm:
    """Deterministic pseudo-random walker: direction from a hash.

    Stateless and deterministic in (seed, Ttime, net) — a legitimate
    protocol as far as the engine is concerned, exercising arbitrary
    direction changes.
    """

    name = "chaos"

    def __init__(self, seed):
        self._seed = seed

    def setup(self, memory):
        return None

    def compute(self, snapshot, memory):
        h = hash((self._seed, memory.Ttime, memory.net, snapshot.on_port))
        choice = h % 3
        if choice == 0:
            return move(LEFT)
        if choice == 1:
            return move(RIGHT)
        return STAY


directions = st.sampled_from([LEFT, RIGHT])
scripts = st.lists(
    st.one_of(directions.map(move), st.just(STAY)), min_size=0, max_size=60
)


class TestSingleAgentDifferential:
    @settings(max_examples=60)
    @given(
        n=st.integers(min_value=3, max_value=12),
        start=st.integers(min_value=0, max_value=11),
        script=scripts,
        seed=st.integers(min_value=0, max_value=2**16),
        mirrored=st.booleans(),
    )
    def test_position_matches_reference_fold(self, n, start, script, seed, mirrored):
        orientation = MIRRORED if mirrored else CANONICAL
        adversary = RandomMissingEdge(seed=seed)
        engine = Engine(
            Ring(n),
            ScriptedSingle(script),
            [start % n],
            orientations=[orientation],
            scheduler=FsyncScheduler(),
            adversary=adversary,
            transport=TransportModel.NS,
        )
        # Reference: replay the same adversary stream independently.
        reference_adversary = RandomMissingEdge(seed=seed)
        reference_adversary.reset(engine)
        node, port = start % n, None
        moves = 0
        ring = Ring(n)
        for action in script:
            missing = reference_adversary.choose_missing_edge(engine)
            if action is STAY:
                pass
            else:
                target = orientation.to_global(action.direction)
                port = target  # single agent: acquisition always succeeds
                edge = ring.edge_from(node, target)
                if edge != missing:
                    node = ring.neighbor(node, target)
                    port = None
                    moves += 1
            engine.step()
            agent = engine.agents[0]
            assert agent.node == node
            assert agent.port == port
            assert agent.memory.Tsteps == moves

    @settings(max_examples=40)
    @given(
        n=st.integers(min_value=3, max_value=10),
        script=scripts,
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_counters_are_internally_consistent(self, n, script, seed):
        engine = Engine(
            Ring(n, landmark=0),
            ScriptedSingle(script),
            [1],
            scheduler=FsyncScheduler(),
            adversary=RandomMissingEdge(seed=seed),
            transport=TransportModel.NS,
        )
        for _ in script:
            engine.step()
            mem = engine.agents[0].memory
            assert mem.Ttime == engine.round_no
            assert 0 <= mem.Tnodes <= mem.Tsteps
            assert mem.min_net <= mem.net <= mem.max_net
            assert mem.Esteps <= mem.Tsteps
            assert mem.Etime <= mem.Ttime
            # span >= n-1 edges means the agent itself saw every node
            if mem.Tnodes >= n - 1:
                assert engine.exploration_complete


class TestChaosInvariants:
    @settings(max_examples=30)
    @given(
        n=st.integers(min_value=3, max_value=10),
        agents=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=2**16),
        transport=st.sampled_from(list(TransportModel)),
        rounds=st.integers(min_value=1, max_value=80),
    )
    def test_global_invariants_hold_every_round(self, n, agents, seed, transport, rounds):
        positions = [(seed + 3 * i) % n for i in range(agents)]
        engine = Engine(
            Ring(n, landmark=seed % n),
            ChaosAlgorithm(seed),
            positions,
            orientations=[
                MIRRORED if (seed >> i) & 1 else CANONICAL for i in range(agents)
            ],
            scheduler=RandomFairScheduler(p=0.6, seed=seed),
            adversary=RandomMissingEdge(p=0.7, seed=seed + 1),
            transport=transport,
        )
        visited_before = set(engine.visited)
        for _ in range(rounds):
            engine.step()
            # 1. port exclusivity (the engine asserts this itself, but the
            #    test documents it as a model property)
            occupied = [
                (a.node, a.port) for a in engine.agents if a.port is not None
            ]
            assert len(occupied) == len(set(occupied))
            # 2. positions are legal nodes
            for agent in engine.agents:
                assert 0 <= agent.node < n
            # 3. visited grows monotonically and covers agents' positions
            assert visited_before <= engine.visited
            assert {a.node for a in engine.agents} <= engine.visited
            visited_before = set(engine.visited)
            # 4. at most one edge missing, in range
            assert engine.missing_edge is None or 0 <= engine.missing_edge < n
            # 5. per-agent counter sanity
            for agent in engine.agents:
                mem = agent.memory
                assert mem.Tnodes <= mem.Tsteps
                assert mem.Btime <= mem.Ttime + 1
            # 6. exploration flag consistent with the visited set
            assert engine.exploration_complete == (len(engine.visited) == n)

    @settings(max_examples=20)
    @given(
        n=st.integers(min_value=4, max_value=10),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_determinism_full_replay(self, n, seed):
        """Identical configuration => identical trajectory."""

        def trajectory():
            engine = Engine(
                Ring(n),
                ChaosAlgorithm(seed),
                [0, n // 2],
                scheduler=RandomFairScheduler(seed=seed),
                adversary=RandomMissingEdge(seed=seed + 1),
                transport=TransportModel.PT,
            )
            out = []
            for _ in range(60):
                engine.step()
                out.append(tuple((a.node, a.port) for a in engine.agents))
            return out

        assert trajectory() == trajectory()

    @settings(max_examples=20)
    @given(
        n=st.integers(min_value=4, max_value=10),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_pt_transport_only_moves_port_sleepers(self, n, seed):
        """Under PT, an agent's position changes in a round only if it was
        active or asleep on a port with its edge present."""
        engine = Engine(
            Ring(n),
            ChaosAlgorithm(seed),
            [0, n // 2],
            scheduler=RandomFairScheduler(p=0.4, seed=seed),
            adversary=RandomMissingEdge(p=0.5, seed=seed + 1),
            transport=TransportModel.PT,
        )
        for _ in range(60):
            before = [(a.node, a.port) for a in engine.agents]
            engine.step()
            for agent, (node, port) in zip(engine.agents, before):
                if agent.index in engine.last_active:
                    continue
                if (node, port) != (agent.node, agent.port):
                    # moved while asleep: must have been passive transport
                    assert port is not None
                    assert agent.port is None
