"""core test package."""
