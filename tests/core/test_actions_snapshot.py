"""Action construction rules and snapshot predicates."""

import pytest

from repro.core.actions import Action, ActionKind, ENTER_NODE, STAY, TERMINATE, move
from repro.core.directions import LEFT, RIGHT
from repro.core.snapshot import Snapshot


class TestActions:
    def test_move_carries_direction(self):
        action = move(LEFT)
        assert action.kind is ActionKind.MOVE
        assert action.direction is LEFT

    def test_move_requires_direction(self):
        with pytest.raises(ValueError):
            Action(ActionKind.MOVE)

    def test_non_move_rejects_direction(self):
        with pytest.raises(ValueError):
            Action(ActionKind.STAY, LEFT)

    def test_singletons(self):
        assert STAY.kind is ActionKind.STAY
        assert ENTER_NODE.kind is ActionKind.ENTER_NODE
        assert TERMINATE.kind is ActionKind.TERMINATE

    def test_actions_are_frozen(self):
        with pytest.raises(AttributeError):
            STAY.kind = ActionKind.MOVE  # type: ignore[misc]


def snap(
    on_port=None,
    others=0,
    left_port=False,
    right_port=False,
    landmark=False,
    moved=False,
    failed=False,
) -> Snapshot:
    return Snapshot(
        on_port=on_port,
        others_in_node=others,
        other_on_left_port=left_port,
        other_on_right_port=right_port,
        is_landmark=landmark,
        moved=moved,
        failed=failed,
    )


class TestPredicates:
    def test_meeting_requires_both_in_interior(self):
        assert snap(others=1).meeting()
        assert not snap(others=0).meeting()
        assert not snap(on_port=LEFT, others=1).meeting()

    def test_catches_checks_port_in_moving_direction(self):
        assert snap(left_port=True).catches(LEFT)
        assert not snap(left_port=True).catches(RIGHT)
        assert snap(right_port=True).catches(RIGHT)

    def test_agent_on_a_port_cannot_catch(self):
        assert not snap(on_port=RIGHT, left_port=True).catches(LEFT)

    def test_caught_requires_failed_move_and_witness(self):
        assert snap(on_port=LEFT, others=1, moved=False).caught()
        assert not snap(on_port=LEFT, others=0, moved=False).caught()
        assert not snap(on_port=LEFT, others=1, moved=True).caught()
        assert not snap(others=1).caught()

    def test_other_on_port_lookup(self):
        s = snap(left_port=True)
        assert s.other_on_port(LEFT)
        assert not s.other_on_port(RIGHT)

    def test_in_interior(self):
        assert snap().in_interior
        assert not snap(on_port=LEFT).in_interior
