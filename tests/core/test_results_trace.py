"""RunResult classification and Trace behaviour."""

from repro.core.results import AgentStats, RunResult, TerminationMode
from repro.core.trace import Event, EventKind, Trace


def result(*, explored, exploration_round, agents):
    return RunResult(
        ring_size=6,
        rounds=100,
        explored=explored,
        exploration_round=exploration_round,
        visited=set(range(6)) if explored else {0},
        agents=[
            AgentStats(
                index=i,
                moves=10,
                terminated=t is not None,
                termination_round=t,
                final_node=0,
                waiting_on_port=False,
            )
            for i, t in enumerate(agents)
        ],
    )


class TestTerminationMode:
    def test_explicit(self):
        r = result(explored=True, exploration_round=5, agents=[7, 9])
        assert r.termination_mode() is TerminationMode.EXPLICIT

    def test_partial(self):
        r = result(explored=True, exploration_round=5, agents=[7, None])
        assert r.termination_mode() is TerminationMode.PARTIAL

    def test_unconscious(self):
        r = result(explored=True, exploration_round=5, agents=[None, None])
        assert r.termination_mode() is TerminationMode.UNCONSCIOUS

    def test_none(self):
        r = result(explored=False, exploration_round=None, agents=[None, None])
        assert r.termination_mode() is TerminationMode.NONE

    def test_incorrect_when_terminating_unexplored(self):
        r = result(explored=False, exploration_round=None, agents=[3, None])
        assert r.termination_mode() is TerminationMode.INCORRECT

    def test_incorrect_when_terminating_too_early(self):
        r = result(explored=True, exploration_round=50, agents=[3, None])
        assert r.termination_mode() is TerminationMode.INCORRECT

    def test_termination_at_exploration_round_is_fine(self):
        r = result(explored=True, exploration_round=5, agents=[5, 6])
        assert r.termination_mode() is TerminationMode.EXPLICIT

    def test_counts(self):
        r = result(explored=True, exploration_round=5, agents=[7, None, 9])
        assert r.terminated_count == 2
        assert r.any_terminated
        assert not r.all_terminated
        assert r.last_termination_round == 9
        assert r.total_moves == 30

    def test_summary_mentions_mode(self):
        r = result(explored=True, exploration_round=5, agents=[7, 9])
        assert "explicit" in r.summary()
        assert "explored@r5" in r.summary()


class TestTrace:
    def test_append_and_query(self):
        trace = Trace()
        trace.emit(Event(0, EventKind.MOVE, agent=1, detail="v0->v1"))
        trace.emit(Event(1, EventKind.BLOCKED, agent=0))
        assert len(trace) == 2
        assert len(trace.of_kind(EventKind.MOVE)) == 1
        assert len(trace.for_agent(0)) == 1

    def test_limit_truncates_silently(self):
        trace = Trace(limit=2)
        for i in range(5):
            trace.emit(Event(i, EventKind.MOVE))
        assert len(trace) == 2
        assert trace.truncated
        assert "truncated" in trace.render()

    def test_render_last(self):
        trace = Trace()
        for i in range(5):
            trace.emit(Event(i, EventKind.MOVE, agent=0))
        lines = trace.render(last=2).splitlines()
        assert len(lines) == 2
        assert "r    4" in lines[-1] or "r4" in lines[-1].replace(" ", "")

    def test_event_str(self):
        text = str(Event(3, EventKind.TERMINATE, agent=2, detail="at v1"))
        assert "terminate" in text
        assert "a2" in text
