"""Orientation and direction arithmetic."""

import pytest
from hypothesis import given, strategies as st

from repro.core.directions import (
    CANONICAL,
    GlobalDirection,
    LEFT,
    LocalDirection,
    MINUS,
    MIRRORED,
    Orientation,
    PLUS,
    RIGHT,
    orientations_for,
)


class TestGlobalDirection:
    def test_opposites(self):
        assert PLUS.opposite is MINUS
        assert MINUS.opposite is PLUS

    def test_integer_values_are_index_deltas(self):
        assert int(PLUS) == 1
        assert int(MINUS) == -1

    def test_double_opposite_is_identity(self):
        for d in GlobalDirection:
            assert d.opposite.opposite is d


class TestLocalDirection:
    def test_opposites(self):
        assert LEFT.opposite is RIGHT
        assert RIGHT.opposite is LEFT

    def test_double_opposite_is_identity(self):
        for d in LocalDirection:
            assert d.opposite.opposite is d


class TestOrientation:
    def test_canonical_left_is_minus(self):
        assert CANONICAL.to_global(LEFT) is MINUS
        assert CANONICAL.to_global(RIGHT) is PLUS

    def test_mirrored_left_is_plus(self):
        assert MIRRORED.to_global(LEFT) is PLUS
        assert MIRRORED.to_global(RIGHT) is MINUS

    def test_to_local_inverts_to_global(self):
        for orientation in (CANONICAL, MIRRORED):
            for local in LocalDirection:
                assert orientation.to_local(orientation.to_global(local)) is local

    def test_to_global_inverts_to_local(self):
        for orientation in (CANONICAL, MIRRORED):
            for global_dir in GlobalDirection:
                assert orientation.to_global(orientation.to_local(global_dir)) is global_dir

    def test_flipped_swaps_frames(self):
        assert CANONICAL.flipped() == MIRRORED
        assert MIRRORED.flipped() == CANONICAL

    def test_equality_and_hash(self):
        assert Orientation(MINUS) == CANONICAL
        assert hash(Orientation(MINUS)) == hash(CANONICAL)
        assert Orientation(PLUS) != CANONICAL

    def test_repr_names_left(self):
        assert "MINUS" in repr(CANONICAL)


class TestOrientationsFor:
    def test_chirality_gives_identical_orientations(self):
        team = orientations_for(3, chirality=True)
        assert team == [CANONICAL, CANONICAL, CANONICAL]

    def test_flipped_marks_mirrored_agents(self):
        team = orientations_for(3, chirality=False, flipped=(1,))
        assert team == [CANONICAL, MIRRORED, CANONICAL]

    def test_chirality_with_flips_is_rejected(self):
        with pytest.raises(ValueError):
            orientations_for(2, chirality=True, flipped=(0,))

    def test_out_of_range_flip_is_rejected(self):
        with pytest.raises(ValueError):
            orientations_for(2, chirality=False, flipped=(5,))

    def test_empty_team_is_rejected(self):
        with pytest.raises(ValueError):
            orientations_for(0, chirality=True)

    @given(st.integers(min_value=1, max_value=8), st.data())
    def test_flip_sets_are_respected(self, count, data):
        flips = tuple(
            data.draw(st.sets(st.integers(min_value=0, max_value=count - 1), max_size=count))
        )
        team = orientations_for(count, chirality=False, flipped=flips)
        for index, orientation in enumerate(team):
            expected = MIRRORED if index in flips else CANONICAL
            assert orientation == expected
