"""Analysis tooling: safety checker, complexity fits, sweeps."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.analysis.checker import assert_safe, check_safety, classify_runs
from repro.analysis.complexity import best_fit, doubling_ratios, fit_model
from repro.analysis.runner import average_case, sweep
from repro.adversary import RandomMissingEdge
from repro.algorithms.fsync import KnownUpperBound
from repro.api import build_engine
from repro.core.results import AgentStats, RunResult, TerminationMode
from repro.schedulers import FsyncScheduler


def run_result(explored, exploration_round, terminations):
    return RunResult(
        ring_size=5,
        rounds=50,
        explored=explored,
        exploration_round=exploration_round,
        visited=set(range(5)) if explored else {0},
        agents=[
            AgentStats(index=i, moves=3, terminated=t is not None,
                       termination_round=t, final_node=0, waiting_on_port=False)
            for i, t in enumerate(terminations)
        ],
    )


class TestChecker:
    def test_clean_run(self):
        assert check_safety(run_result(True, 4, [6, 9])) == []

    def test_unexplored_termination_flagged(self):
        problems = check_safety(run_result(False, None, [6, None]))
        assert len(problems) == 1
        assert "never explored" in problems[0]

    def test_early_termination_flagged(self):
        problems = check_safety(run_result(True, 10, [6, 12]))
        assert len(problems) == 1
        assert "before exploration" in problems[0]

    def test_assert_safe_raises(self):
        with pytest.raises(AssertionError):
            assert_safe(run_result(False, None, [6]))
        assert_safe(run_result(True, 4, [6]))

    def test_classify_runs(self):
        histogram = classify_runs([
            run_result(True, 4, [6, 9]),
            run_result(True, 4, [6, None]),
            run_result(True, 4, [None, None]),
            run_result(False, None, [None, None]),
        ])
        assert histogram[TerminationMode.EXPLICIT] == 1
        assert histogram[TerminationMode.PARTIAL] == 1
        assert histogram[TerminationMode.UNCONSCIOUS] == 1
        assert histogram[TerminationMode.NONE] == 1


class TestComplexityFits:
    def test_perfect_linear(self):
        xs = [4, 8, 16, 32, 64]
        ys = [3 * x + 1 for x in xs]
        fit = fit_model(xs, ys, "linear")
        assert fit.r_squared > 0.9999
        assert fit.coefficient == pytest.approx(3, abs=1e-6)
        assert fit.intercept == pytest.approx(1, abs=1e-4)

    def test_perfect_quadratic_prefers_quadratic(self):
        xs = [4, 8, 16, 32, 64]
        ys = [2 * x * x for x in xs]
        assert best_fit(xs, ys).model == "quadratic"

    def test_nlogn_identified(self):
        xs = [8, 16, 32, 64, 128, 256]
        ys = [5 * x * math.log2(x) for x in xs]
        assert best_fit(xs, ys).model == "nlogn"

    def test_linear_identified(self):
        xs = [8, 16, 32, 64, 128, 256]
        ys = [7 * x + 2 for x in xs]
        # linear data: the linear fit must be essentially perfect
        fit = fit_model(xs, ys, "linear")
        assert fit.r_squared > 0.99999

    def test_predict(self):
        fit = fit_model([1, 2, 3], [2, 4, 6], "linear")
        assert fit.predict(10) == pytest.approx(20, abs=1e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_model([1], [1], "linear")
        with pytest.raises(ValueError):
            fit_model([1, 2], [1, 2], "cubic")

    def test_doubling_ratios(self):
        xs = [4, 8, 16]
        ys = [16, 64, 256]
        assert doubling_ratios(xs, ys) == [4.0, 4.0]

    @given(st.floats(min_value=0.5, max_value=20), st.floats(min_value=-5, max_value=5))
    def test_linear_recovery_property(self, a, b):
        xs = [4.0, 8.0, 16.0, 32.0]
        ys = [a * x + b for x in xs]
        fit = fit_model(xs, ys, "linear")
        assert fit.coefficient == pytest.approx(a, rel=1e-6, abs=1e-6)


class TestRunner:
    def factory(self, n, seed):
        return build_engine(
            KnownUpperBound(bound=n),
            ring_size=n,
            positions=[0, n // 2],
            adversary=RandomMissingEdge(seed=seed),
            scheduler=FsyncScheduler(),
        )

    def test_average_case_aggregates(self):
        point = average_case(self.factory, 8, seeds=range(4), max_rounds=100)
        assert point.runs == 4
        assert point.all_explored
        assert point.mean_exploration_round is not None
        assert point.max_moves >= point.mean_moves

    def test_sweep_runs_each_size(self):
        points = sweep(
            self.factory, [5, 7, 9], seeds=range(2),
            max_rounds_for=lambda n: 3 * n + 10,
        )
        assert [p.n for p in points] == [5, 7, 9]
        assert all(p.all_explored for p in points)

    def test_point_str_mentions_n(self):
        point = average_case(self.factory, 8, seeds=[0], max_rounds=100)
        assert "n=" in str(point)
