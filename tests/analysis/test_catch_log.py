"""Empirical catch logging and the ET ping-pong scenario (Theorem 20)."""

import pytest

from repro.adversary import ETPingPongAdversary, RandomMissingEdge
from repro.algorithms.ssync import ETExactSizeNoChirality, PTBoundNoChirality
from repro.analysis.catch_log import log_catches, successor_violations
from repro.api import build_engine
from repro.core import TerminationMode, TransportModel
from repro.core.errors import ConfigurationError
from repro.schedulers import ETFairScheduler, RandomFairScheduler


def pingpong_engine(n=11, release_round=200):
    adversary = ETPingPongAdversary(release_round=release_round)
    cfg = adversary.configuration(n)
    engine = build_engine(
        ETExactSizeNoChirality(ring_size=n),
        ring_size=n,
        positions=cfg["positions"],
        orientations=cfg["orientations"],
        adversary=adversary,
        scheduler=adversary,
        transport=TransportModel.ET,
    )
    return engine


class TestPingPongAdversary:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ETPingPongAdversary(release_round=1)
        with pytest.raises(ConfigurationError):
            ETPingPongAdversary.configuration(6)
        adversary = ETPingPongAdversary(release_round=10)
        with pytest.raises(ConfigurationError):
            build_engine(
                ETExactSizeNoChirality(ring_size=8), ring_size=8,
                positions=[0, 4], adversary=adversary, scheduler=adversary,
                transport=TransportModel.ET,
            )

    def test_no_termination_while_forcing(self):
        """The unbounded-delay configuration of Theorem 20's remark."""
        engine = pingpong_engine(release_round=300)
        engine.run(280)
        assert not engine.all_terminated
        assert not any(a.terminated for a in engine.agents)
        # walls still parked on their ports
        assert engine.agents[0].port is not None
        assert engine.agents[2].port is not None

    def test_termination_follows_release(self):
        """The ET guarantee bites once the adversary stands down."""
        engine = pingpong_engine(release_round=200)
        result = engine.run(400)
        assert result.explored
        assert result.any_terminated
        assert result.termination_mode() in (
            TerminationMode.PARTIAL, TerminationMode.EXPLICIT
        )

    @pytest.mark.parametrize("release", [60, 200, 600])
    def test_delay_is_tunable_without_bound(self, release):
        """Longer forcing = more moves before termination: no fixed bound."""
        engine = pingpong_engine(release_round=release)
        result = engine.run(release + 200)
        assert result.explored
        assert result.rounds > release


class TestCatchLogging:
    def test_forced_run_produces_clean_catch_stream(self):
        engine = pingpong_engine(release_round=400)
        records = log_catches(engine, 1_000)
        assert len(records) >= 20  # the bouncer keeps bouncing
        assert successor_violations(records) == []

    def test_direction_alternates(self):
        engine = pingpong_engine(release_round=300)
        records = log_catches(engine, 600)
        directions = [r.direction for r in records]
        for previous, current in zip(directions, directions[1:]):
            assert current is not previous

    def test_bouncer_is_always_the_catcher_while_forcing(self):
        engine = pingpong_engine(release_round=300)
        records = log_catches(engine, 280)
        assert records
        assert all(r.catcher == 1 for r in records)
        assert all(r.caught in (0, 2) for r in records)

    def test_random_runs_are_also_clean(self):
        for seed in range(8):
            engine = build_engine(
                PTBoundNoChirality(bound=9), ring_size=9, positions=[0, 3, 6],
                chirality=False, flipped=(1,),
                adversary=RandomMissingEdge(seed=seed),
                scheduler=RandomFairScheduler(seed=seed + 50),
                transport=TransportModel.PT,
            )
            records = log_catches(engine, 30_000)
            assert successor_violations(records) == []
