"""analysis test package."""
