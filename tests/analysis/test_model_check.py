"""Exhaustive adversary model checking (Theorem 3 on small rings)."""

import itertools

import pytest

from repro.adversary import NoRemoval
from repro.algorithms.fsync import KnownUpperBound
from repro.analysis.model_check import (
    ForcedEdgeAdversary,
    SearchResult,
    effective_edge_choices,
    exhaustive_worst_case,
    verify_theorem3,
)
from repro.api import build_engine
from repro.core.errors import ConfigurationError


class TestEffectiveChoices:
    def test_idle_agents_leave_only_none(self):
        from repro.core import STAY

        class Idle:
            name = "idle"

            def setup(self, memory):
                return None

            def compute(self, snapshot, memory):
                return STAY

        engine = build_engine(Idle(), ring_size=6, positions=[0, 3])
        assert effective_edge_choices(engine) == [None]

    def test_two_walkers_give_three_choices(self):
        engine = build_engine(
            KnownUpperBound(bound=6), ring_size=6, positions=[0, 3]
        )
        choices = effective_edge_choices(engine)
        assert choices[0] is None
        assert len(choices) == 3  # None + one attempted edge per agent

    def test_agents_attempting_same_edge_collapse(self):
        engine = build_engine(
            KnownUpperBound(bound=6), ring_size=6, positions=[3, 3]
        )
        choices = effective_edge_choices(engine)
        assert len(choices) == 2  # None + the shared edge


class TestExhaustiveSearch:
    def test_requires_forced_adversary(self):
        def bad_factory():
            return build_engine(
                KnownUpperBound(bound=5), ring_size=5, positions=[0, 1],
                adversary=NoRemoval(),
            )

        with pytest.raises(ConfigurationError):
            exhaustive_worst_case(
                bad_factory, depth=9,
                done=lambda e: e.exploration_complete,
                value=lambda e: e.exploration_round or 0,
            )

    @pytest.mark.parametrize("n", [4, 5])
    def test_theorem3_verified_for_every_start_pair(self, n):
        """Every adversary schedule is defeated by round 3n-6 — exhaustively."""
        worst = -1
        for a, b in itertools.combinations(range(n), 2):
            result = verify_theorem3(n, positions=(a, b))
            assert result.all_succeeded, (n, a, b)
            assert result.worst_value <= 3 * n - 6
            worst = max(worst, result.worst_value)
        assert worst == 3 * n - 6  # the bound is tight (Figure 2's squeeze)

    def test_adjacent_starts_realize_the_worst_case(self):
        n = 6
        result = verify_theorem3(n, positions=(0, 1))
        assert result.worst_value == 3 * n - 6
        assert result.all_succeeded

    def test_witness_schedule_replays(self):
        """The returned witness reproduces the worst case when replayed."""
        n = 5
        result = verify_theorem3(n, positions=(0, 1))
        adversary = ForcedEdgeAdversary()
        engine = build_engine(
            KnownUpperBound(bound=n), ring_size=n, positions=[0, 1],
            adversary=adversary,
        )
        for edge in result.witness:
            adversary.edge = edge
            engine.step()
        assert engine.exploration_complete
        assert engine.exploration_round == result.worst_value

    def test_result_counts_branches(self):
        result = verify_theorem3(4, positions=(0, 1))
        assert isinstance(result, SearchResult)
        assert result.branches_explored > 10


class TestTheorem5Exhaustive:
    def test_unconscious_exploration_verified_small_rings(self):
        from repro.analysis.model_check import verify_theorem5

        for n in (4, 5):
            worst = -1
            for a in range(n):
                result = verify_theorem5(n, positions=(0, a or 1))
                assert result.all_succeeded
                worst = max(worst, result.worst_value)
            assert worst <= 3 * n  # O(n) with a small constant

    def test_worst_case_exceeds_static_time(self):
        from repro.analysis.model_check import verify_theorem5

        n = 6
        result = verify_theorem5(n, positions=(0, 1))
        # a static ring explores in ~n/2 rounds; the adversary forces more
        assert result.worst_value > n // 2
