"""Figure 22 / Claims 4-5: the Catch Tree, verified exhaustively."""

import pytest

from repro.analysis.catch_tree import (
    AGENTS,
    CatchEvent,
    CatchTree,
    FORBIDDEN_SEQUENCES,
    all_events,
)
from repro.core.directions import LEFT, RIGHT


class TestCatchEvent:
    def test_twelve_events_exist(self):
        events = all_events()
        assert len(events) == 12
        assert len(set(events)) == 12

    def test_third_agent(self):
        assert CatchEvent(LEFT, "a", "b").third == "c"
        assert CatchEvent(RIGHT, "b", "c").third == "a"

    def test_successor_rule(self):
        """Dxy -> D'xz or D'zx: opposite direction, third agent involved."""
        event = CatchEvent(LEFT, "a", "b")
        successors = event.successors()
        assert set(successors) == {
            CatchEvent(RIGHT, "a", "c"),
            CatchEvent(RIGHT, "c", "a"),
        }

    def test_every_successor_flips_direction(self):
        for event in all_events():
            for succ in event.successors():
                assert succ.direction is event.direction.opposite
                assert event.caught not in (succ.catcher, succ.caught)

    def test_labels(self):
        assert CatchEvent(LEFT, "a", "c").label() == "Lac"
        assert CatchEvent(RIGHT, "b", "a").label() == "Rba"

    def test_self_catch_rejected(self):
        with pytest.raises(ValueError):
            CatchEvent(LEFT, "a", "a")

    def test_unknown_agent_rejected(self):
        with pytest.raises(ValueError):
            CatchEvent(LEFT, "a", "x")


class TestForbiddenPairs:
    def test_claim5_lists_six_pairs(self):
        assert len(FORBIDDEN_SEQUENCES) == 6

    def test_forbidden_pairs_are_valid_successions(self):
        """Claim 5 forbids otherwise-legal successor pairs."""
        for first, second in FORBIDDEN_SEQUENCES:
            assert second in first.successors()

    def test_rotation_structure(self):
        """The six pairs are Claim 4's pattern closed under rotation/symmetry."""
        labels = {(a.label(), b.label()) for a, b in FORBIDDEN_SEQUENCES}
        assert ("Lac", "Rba") in labels
        assert ("Rbc", "Lab") in labels


class TestCatchTree:
    def test_edge_count(self):
        """24 successor edges minus the 6 forbidden ones."""
        tree = CatchTree()
        assert len(tree.edges) == 18

    def test_every_cycle_is_a_bounded_loop(self):
        """The heart of Theorem 20: no unbounded catch sequence exists."""
        tree = CatchTree()
        assert tree.unbounded_cycles() == []

    def test_exactly_six_bounded_loops(self):
        tree = CatchTree()
        cycles = tree.simple_cycles()
        assert len(cycles) == 6
        assert all(tree.is_bounded_loop(c) for c in cycles)

    def test_bounded_loops_share_a_catcher(self):
        tree = CatchTree()
        for cycle in tree.simple_cycles():
            catchers = {label[1] for label in cycle}
            assert len(catchers) == 1

    def test_figure22_left_tree(self):
        """Root Lab: Rac loops back; Rca leads into the c-loop (Figure 22)."""
        tree = CatchTree()
        rendering = tree.render("Lab", depth=3)
        assert "Lab" in rendering
        assert "(loop)" in rendering

    def test_paths_from_root_terminate_or_loop(self):
        """Every depth-6 path from Lab/Lac revisits some event (no free run)."""
        tree = CatchTree()
        for root in ("Lab", "Lac"):
            for path in tree.paths_from(root, 6):
                assert len(set(path)) < len(path)

    def test_graph_is_exported_to_networkx(self):
        graph = CatchTree().to_networkx()
        assert graph.number_of_nodes() == 12
        assert graph.number_of_edges() == 18

    def test_is_bounded_loop_rejects_longer_cycles(self):
        tree = CatchTree()
        assert not tree.is_bounded_loop(["Lab", "Rac", "Lba"])
        assert not tree.is_bounded_loop(["Lab"])
        assert not tree.is_bounded_loop(["Lab", "Rba"])  # different catcher
