"""Test-suite package root.

The suite uses relative imports (``from ..helpers import fsync_engine``),
so every test directory is a real package; pytest imports modules as
``tests.<subdir>.<module>``.
"""
