"""Smoke tests: every example script runs to completion."""

import os
import pathlib
import subprocess
import sys

import pytest

REPO_ROOT = pathlib.Path(__file__).parent.parent
EXAMPLES = sorted((REPO_ROOT / "examples").glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs_clean(script):
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (src, env.get("PYTHONPATH")) if p
    )
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=600,
        env=env,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip(), "examples must narrate what they do"


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 3
